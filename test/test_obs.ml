(* Observability layer: trace spans, the metrics registry, JSON, and the
   estimate-derivation recorder. The properties at the bottom pin the
   layer's central contract — recording is observation-only (bit-identical
   estimates with obs on or off) and a recorded derivation replays to the
   exact step sizes the pipeline produced. *)

(* --- trace spans --- *)

let test_trace_fake_clock () =
  let now = ref 0. in
  let tracer = Obs.Trace.create ~clock:(fun () -> !now) () in
  let t = Some tracer in
  Obs.Trace.with_span t "outer" (fun () ->
      now := !now +. 1.;
      Obs.Trace.with_span t "inner" (fun () ->
          now := !now +. 2.;
          Obs.Trace.attr_int t "k" 7);
      now := !now +. 0.5);
  match Obs.Trace.roots tracer with
  | [ outer ] ->
    Alcotest.(check string) "root name" "outer" outer.Obs.Trace.name;
    Helpers.check_float "root start" 0. outer.Obs.Trace.start_s;
    Helpers.check_float "root duration" 3.5 outer.Obs.Trace.duration_s;
    (match outer.Obs.Trace.children with
    | [ inner ] ->
      Alcotest.(check string) "child name" "inner" inner.Obs.Trace.name;
      Helpers.check_float "child start" 1. inner.Obs.Trace.start_s;
      Helpers.check_float "child duration" 2. inner.Obs.Trace.duration_s;
      Alcotest.(check bool) "child attr" true
        (inner.Obs.Trace.attrs = [ ("k", Obs.Json.Int 7) ])
    | children ->
      Alcotest.failf "expected 1 child, got %d" (List.length children))
  | roots -> Alcotest.failf "expected 1 root, got %d" (List.length roots)

let test_trace_exception_closes_span () =
  let tracer = Obs.Trace.create ~clock:(fun () -> 0.) () in
  let t = Some tracer in
  (try Obs.Trace.with_span t "boom" (fun () -> raise Exit) with Exit -> ());
  (match Obs.Trace.roots tracer with
  | [ s ] -> Alcotest.(check string) "span closed on raise" "boom" s.Obs.Trace.name
  | roots -> Alcotest.failf "expected 1 root, got %d" (List.length roots));
  (* without a tracer, with_span is the identity on the thunk *)
  Alcotest.(check int) "None tracer is transparent" 42
    (Obs.Trace.with_span None "x" (fun () -> 42))

(* --- json --- *)

let test_json_roundtrip () =
  let doc =
    Obs.Json.(
      Obj
        [
          ("name", String "els\"db\n");
          ("n", Int 42);
          ("pi", Float 3.5);
          ("ok", Bool true);
          ("none", Null);
          ("xs", List [ Int 1; Int 2; Obj [] ]);
        ])
  in
  (match Obs.Json.of_string (Obs.Json.to_string doc) with
  | Ok back -> Alcotest.(check bool) "roundtrip" true (back = doc)
  | Error e -> Alcotest.failf "parse error: %s" e);
  (match Obs.Json.of_string "{\"a\": [1, 2.5, null]}" with
  | Ok v ->
    Alcotest.(check bool) "int/float split" true
      (Obs.Json.member "a" v = Some (Obs.Json.List Obs.Json.[ Int 1; Float 2.5; Null ]))
  | Error e -> Alcotest.failf "parse error: %s" e);
  match Obs.Json.of_string "{broken" with
  | Ok _ -> Alcotest.fail "accepted malformed input"
  | Error _ -> ()

(* The parser is a boundary: adversarial input must come back as [Error],
   never as a stack overflow or an unbounded allocation. *)
let test_json_hardening () =
  (* pathological nesting is refused by the depth cap, not the stack *)
  (match Obs.Json.of_string (String.make 100_000 '[') with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted 100k-deep nesting");
  (match Obs.Json.of_string (String.make 100_000 '{') with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted 100k-deep object nesting");
  (* the cap is exact: depth max_depth parses, max_depth + 1 does not *)
  let nested depth = String.make depth '[' ^ "1" ^ String.make depth ']' in
  (match Obs.Json.of_string ~max_depth:8 (nested 8) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "refused depth 8 under max_depth 8: %s" e);
  (match Obs.Json.of_string ~max_depth:8 (nested 9) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted depth 9 under max_depth 8");
  (* oversized tokens are refused by the length cap *)
  (match
     Obs.Json.of_string ~max_token_bytes:16
       ("\"" ^ String.make 64 'a' ^ "\"")
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a 64-byte string under a 16-byte cap");
  match Obs.Json.of_string ~max_token_bytes:16 (String.make 64 '1') with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a 64-digit number under a 16-byte cap"

(* --- metrics registry --- *)

let test_metrics_instruments () =
  let m = Obs.Metrics.create () in
  Alcotest.(check bool) "fresh registry is empty" true
    (Obs.Metrics.is_empty (Obs.Metrics.snapshot m));
  let c = Obs.Metrics.counter m "a.hits" in
  Obs.Metrics.incr c;
  Obs.Metrics.incr ~by:4 c;
  let g = Obs.Metrics.gauge m "a.level" in
  Obs.Metrics.set g 1.5;
  Obs.Metrics.set g 2.5;
  let h = Obs.Metrics.histogram m "a.lat" in
  Obs.Metrics.observe h 1.;
  Obs.Metrics.observe h 3.;
  let snap = Obs.Metrics.snapshot m in
  Alcotest.(check bool) "counter" true
    (Obs.Metrics.find snap "a.hits" = Some (Obs.Metrics.Counter 5));
  Alcotest.(check bool) "gauge last-write-wins" true
    (Obs.Metrics.find snap "a.level" = Some (Obs.Metrics.Gauge 2.5));
  (match Obs.Metrics.find snap "a.lat" with
  | Some (Obs.Metrics.Histogram s) ->
    Alcotest.(check int) "hist count" 2 s.Obs.Metrics.count;
    Helpers.check_float "hist sum" 4. s.Obs.Metrics.sum;
    Helpers.check_float "hist min" 1. s.Obs.Metrics.min;
    Helpers.check_float "hist max" 3. s.Obs.Metrics.max
  | _ -> Alcotest.fail "histogram missing");
  Alcotest.(check (list string)) "sorted names"
    [ "a.hits"; "a.lat"; "a.level" ]
    (Obs.Metrics.names snap);
  (* kind clash *)
  Alcotest.(check bool) "kind clash rejected" true
    (try
       ignore (Obs.Metrics.gauge m "a.hits");
       false
     with Invalid_argument _ -> true)

let test_metrics_set_counter_monotone () =
  let m = Obs.Metrics.create () in
  let c = Obs.Metrics.counter m "total" in
  Obs.Metrics.set_counter c 10;
  Obs.Metrics.set_counter c 5;
  Alcotest.(check bool) "absorb never regresses" true
    (Obs.Metrics.find (Obs.Metrics.snapshot m) "total"
    = Some (Obs.Metrics.Counter 10));
  Obs.Metrics.set_counter c 12;
  Alcotest.(check bool) "absorb advances" true
    (Obs.Metrics.find (Obs.Metrics.snapshot m) "total"
    = Some (Obs.Metrics.Counter 12))

let test_metrics_diff () =
  let m = Obs.Metrics.create () in
  let c = Obs.Metrics.counter m "c" in
  let h = Obs.Metrics.histogram m "h" in
  Obs.Metrics.incr ~by:3 c;
  Obs.Metrics.observe h 10.;
  let before = Obs.Metrics.snapshot m in
  Obs.Metrics.incr ~by:2 c;
  Obs.Metrics.observe h 4.;
  ignore (Obs.Metrics.counter m "fresh");
  Obs.Metrics.incr (Obs.Metrics.counter m "fresh");
  let after = Obs.Metrics.snapshot m in
  let d = Obs.Metrics.diff ~before ~after in
  Alcotest.(check bool) "counter subtracts" true
    (Obs.Metrics.find d "c" = Some (Obs.Metrics.Counter 2));
  Alcotest.(check bool) "new instrument counts from zero" true
    (Obs.Metrics.find d "fresh" = Some (Obs.Metrics.Counter 1));
  match Obs.Metrics.find d "h" with
  | Some (Obs.Metrics.Histogram s) ->
    Alcotest.(check int) "hist count diff" 1 s.Obs.Metrics.count;
    Helpers.check_float "hist sum diff" 4. s.Obs.Metrics.sum
  | _ -> Alcotest.fail "histogram missing from diff"

let test_metrics_json_shape () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.incr (Obs.Metrics.counter m "c");
  Obs.Metrics.set (Obs.Metrics.gauge m "g") 1.5;
  Obs.Metrics.observe (Obs.Metrics.histogram m "h") 2.;
  let json = Obs.Metrics.to_json (Obs.Metrics.snapshot m) in
  let section name =
    match Obs.Json.member name json with
    | Some (Obs.Json.Obj fields) -> fields
    | _ -> Alcotest.failf "section %s missing" name
  in
  Alcotest.(check bool) "counters section" true
    (section "counters" = [ ("c", Obs.Json.Int 1) ]);
  Alcotest.(check bool) "gauges section" true
    (section "gauges" = [ ("g", Obs.Json.Float 1.5) ]);
  (match section "histograms" with
  | [ ("h", Obs.Json.Obj fields) ] ->
    Alcotest.(check bool) "histogram fields" true
      (List.mem_assoc "count" fields && List.mem_assoc "sum" fields)
  | _ -> Alcotest.fail "histogram entry malformed");
  (* empty registry still has all three sections *)
  let empty = Obs.Metrics.to_json (Obs.Metrics.snapshot (Obs.Metrics.create ())) in
  Alcotest.(check bool) "empty sections present" true
    (Obs.Json.member "counters" empty = Some (Obs.Json.Obj [])
    && Obs.Json.member "gauges" empty = Some (Obs.Json.Obj [])
    && Obs.Json.member "histograms" empty = Some (Obs.Json.Obj []))

(* --- derivation recorder --- *)

let estimator_combine ~rule ss =
  (Els.Estimator.of_string_exn rule).Els.Estimator.combine ss

let test_derivation_records_example1 () =
  let db = Helpers.example1_db () and query = Helpers.example1_query () in
  let profile = Els.prepare Els.Config.els db query in
  let deriv = Obs.Derivation.create () in
  Els.Profile.set_derivation profile (Some deriv);
  let st = Els.Incremental.estimate_order profile [ "r1"; "r2"; "r3" ] in
  Els.Profile.set_derivation profile None;
  let history = Els.Incremental.history st in
  (match Obs.Derivation.base deriv with
  | [ (name, rows) ] ->
    Alcotest.(check string) "base table" "r1" name;
    Helpers.check_float "base rows" 100. rows
  | base -> Alcotest.failf "expected 1 base entry, got %d" (List.length base));
  let steps = Obs.Derivation.steps deriv in
  Alcotest.(check int) "one step per join" (List.length history)
    (List.length steps);
  List.iter2
    (fun step size ->
      Helpers.check_float "recorded output = history" size
        step.Obs.Derivation.output;
      Alcotest.(check bool) "classes recorded" true
        (step.Obs.Derivation.classes <> []);
      List.iter
        (fun cls ->
          Alcotest.(check bool) "inputs recorded" true
            (cls.Obs.Derivation.inputs <> []);
          Alcotest.(check bool) "d' provenance recorded" true
            (List.for_all
               (fun col -> col.Obs.Derivation.source <> "")
               cls.Obs.Derivation.columns))
        step.Obs.Derivation.classes)
    steps history;
  (* the card and the JSON render without blowing up and carry the rule *)
  let card = Format.asprintf "%a" Obs.Derivation.pp_card deriv in
  Alcotest.(check bool) "card mentions tables" true
    (Helpers.contains card "r2" && Helpers.contains card "r3");
  match Obs.Derivation.to_json deriv with
  | Obs.Json.Obj fields ->
    Alcotest.(check bool) "json has base and steps" true
      (List.mem_assoc "base" fields && List.mem_assoc "steps" fields)
  | _ -> Alcotest.fail "derivation json is not an object"

let test_derivation_detached_records_nothing () =
  let db = Helpers.example1_db () and query = Helpers.example1_query () in
  let profile = Els.prepare Els.Config.els db query in
  ignore (Els.Incremental.estimate_order profile [ "r1"; "r2"; "r3" ]);
  Alcotest.(check bool) "no sink, no derivation" true
    (Els.Profile.derivation profile = None)

let test_choose_trace_transparent () =
  let db = Helpers.example1_db () and query = Helpers.example1_query () in
  let plain = Optimizer.choose Els.Config.els db query in
  let tracer = Obs.Trace.create ~clock:(fun () -> 0.) () in
  let traced = Optimizer.choose ~trace:tracer Els.Config.els db query in
  Alcotest.(check (list string)) "same join order"
    plain.Optimizer.join_order traced.Optimizer.join_order;
  Alcotest.(check bool) "same cost" true
    (Float.equal plain.Optimizer.estimated_cost traced.Optimizer.estimated_cost);
  let root_names =
    List.map (fun s -> s.Obs.Trace.name) (Obs.Trace.roots tracer)
  in
  Alcotest.(check bool) "profile and optimize spans recorded" true
    (List.mem "profile" root_names && List.mem "optimize" root_names)

(* --- properties --- *)

(* Observation transparency: attaching a tracer and a derivation sink
   changes no estimated number, for any order and estimator. *)
let prop_obs_bit_identity =
  QCheck2.Test.make ~count:60 ~name:"estimates bit-identical with obs on/off"
    ~print:Test_properties.print_chain_spec Test_properties.gen_chain_spec
    (fun spec ->
      let db, query, names = Test_properties.build_chain spec in
      List.for_all
        (fun config ->
          let plain = Els.prepare config db query in
          let observed =
            Els.prepare ~trace:(Obs.Trace.create ~clock:(fun () -> 0.) ())
              config db query
          in
          Els.Profile.set_derivation observed (Some (Obs.Derivation.create ()));
          List.for_all
            (fun order ->
              let a = Els.Incremental.estimate_order plain order in
              let b = Els.Incremental.estimate_order observed order in
              List.for_all2 Float.equal (Els.Incremental.history a)
                (Els.Incremental.history b))
            (Test_properties.permutations names))
        (Els.Config.panel ()))

(* Replay: a recorded derivation recomputes to the exact step sizes. *)
let prop_derivation_replay =
  QCheck2.Test.make ~count:60 ~name:"derivation replays to recorded S_J"
    ~print:Test_properties.print_chain_spec Test_properties.gen_chain_spec
    (fun spec ->
      let db, query, names = Test_properties.build_chain spec in
      List.for_all
        (fun config ->
          let profile = Els.prepare config db query in
          let deriv = Obs.Derivation.create () in
          Els.Profile.set_derivation profile (Some deriv);
          let st = Els.Incremental.estimate_order profile names in
          Els.Profile.set_derivation profile None;
          let history = Els.Incremental.history st in
          let replayed =
            Obs.Derivation.replay ~combine:estimator_combine deriv
          in
          List.length replayed = List.length history
          && List.for_all2 Float.equal replayed history)
        (Els.Config.panel ()))

(* Snapshot diffs of counter activity are non-negative and account for
   exactly the increments between the snapshots. *)
let gen_counter_ops =
  QCheck2.Gen.(
    list_size (int_range 0 30) (pair (int_range 0 4) (int_range 0 5)))

let prop_metric_diff_monotone =
  QCheck2.Test.make ~count:200 ~name:"metric snapshot diff is monotone"
    ~print:(fun (a, b) ->
      Printf.sprintf "before=%d ops, after=%d ops" (List.length a)
        (List.length b))
    QCheck2.Gen.(pair gen_counter_ops gen_counter_ops)
    (fun (ops1, ops2) ->
      let m = Obs.Metrics.create () in
      let apply =
        List.iter (fun (i, by) ->
            Obs.Metrics.incr ~by
              (Obs.Metrics.counter m (Printf.sprintf "c%d" i)))
      in
      apply ops1;
      let before = Obs.Metrics.snapshot m in
      apply ops2;
      let after = Obs.Metrics.snapshot m in
      let d = Obs.Metrics.diff ~before ~after in
      let counters =
        List.filter_map
          (function
            | _, Obs.Metrics.Counter n -> Some n
            | _, (Obs.Metrics.Gauge _ | Obs.Metrics.Histogram _) -> None)
          (Obs.Metrics.bindings d)
      in
      List.for_all (fun n -> n >= 0) counters
      && List.fold_left ( + ) 0 counters
         = List.fold_left (fun acc (_, by) -> acc + by) 0 ops2)

(* Totality fuzz: [of_string] on arbitrary bytes returns Ok or Error —
   it never raises and never fails to terminate. *)
let prop_json_parse_total =
  QCheck2.Test.make ~count:2_000 ~name:"json parse is total on random bytes"
    ~print:String.escaped
    QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (int_range 0 200))
    (fun s ->
      match Obs.Json.of_string ~max_depth:32 ~max_token_bytes:4096 s with
      | Ok _ | Error _ -> true)

(* Totality fuzz on near-misses: take a valid document, damage one byte,
   and the parser must still return rather than raise. *)
let prop_json_parse_total_mutated =
  QCheck2.Test.make ~count:2_000 ~name:"json parse is total on mutated docs"
    ~print:(fun (pos, byte) -> Printf.sprintf "pos=%d byte=%d" pos byte)
    QCheck2.Gen.(pair (int_range 0 1000) (int_range 0 255))
    (fun (pos, byte) ->
      let doc =
        Obs.Json.to_string
          Obs.Json.(
            Obj
              [
                ("id", String "q-1");
                ("xs", List [ Int 1; Float 2.5; Null; Bool false ]);
                ("nested", Obj [ ("deep", List [ Obj [ ("k", Int 9) ] ]) ]);
              ])
      in
      let b = Bytes.of_string doc in
      Bytes.set b (pos mod Bytes.length b) (Char.chr byte);
      match Obs.Json.of_string (Bytes.to_string b) with
      | Ok _ | Error _ -> true)

let suite =
  [
    Alcotest.test_case "trace: fake clock nesting" `Quick test_trace_fake_clock;
    Alcotest.test_case "trace: exception closes span" `Quick
      test_trace_exception_closes_span;
    Alcotest.test_case "json: roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json: adversarial input refused" `Quick
      test_json_hardening;
    Alcotest.test_case "metrics: instruments" `Quick test_metrics_instruments;
    Alcotest.test_case "metrics: set_counter monotone" `Quick
      test_metrics_set_counter_monotone;
    Alcotest.test_case "metrics: diff" `Quick test_metrics_diff;
    Alcotest.test_case "metrics: json shape" `Quick test_metrics_json_shape;
    Alcotest.test_case "derivation: records example 1" `Quick
      test_derivation_records_example1;
    Alcotest.test_case "derivation: detached sink" `Quick
      test_derivation_detached_records_nothing;
    Alcotest.test_case "optimizer: trace-transparent" `Quick
      test_choose_trace_transparent;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_obs_bit_identity;
        prop_derivation_replay;
        prop_metric_diff_monotone;
        prop_json_parse_total;
        prop_json_parse_total_mutated;
      ]
