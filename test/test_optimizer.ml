(* Unit tests for the cost model and the Selinger enumerator. *)

let check_float = Helpers.check_float
let c t col = Query.Cref.v t col

(* --- Cost model --- *)

let test_sort_cost () =
  check_float "empty" 0. (Optimizer.Cost.sort_cost 0.);
  check_float "single" 0. (Optimizer.Cost.sort_cost 1.);
  check_float ~eps:1e-9 "n log2 n" 8. (Optimizer.Cost.sort_cost 4.);
  Alcotest.(check bool) "monotone" true
    (Optimizer.Cost.sort_cost 1000. > Optimizer.Cost.sort_cost 100.)

let test_join_costs_reflect_estimates () =
  (* The paper's failure mode: with a tiny (under)estimated outer, nested
     loops look nearly free; with the true outer they are catastrophic. *)
  let tiny =
    Optimizer.Cost.nested_loop ~outer_rows:4e-8 ~inner_base_rows:100000.
      ~out_rows:0.
  in
  let honest =
    Optimizer.Cost.nested_loop ~outer_rows:100. ~inner_base_rows:100000.
      ~out_rows:100.
  in
  Alcotest.(check bool) "underestimate hides NLJ cost" true (tiny < 1.);
  Alcotest.(check bool) "honest estimate exposes it" true (honest > 1e6);
  let smj =
    Optimizer.Cost.sort_merge ~outer_rows:100. ~inner_base_rows:100000.
      ~inner_rows:100. ~out_rows:100.
  in
  Alcotest.(check bool) "SMJ beats honest NLJ" true (smj < honest);
  let hj =
    Optimizer.Cost.hash ~outer_rows:100. ~inner_base_rows:100000.
      ~inner_rows:100. ~out_rows:100.
  in
  Alcotest.(check bool) "hash beats honest NLJ" true (hj < honest)

let test_costs_nonnegative () =
  List.iter
    (fun (o, i, r, out) ->
      Alcotest.(check bool) "nl >= 0" true
        (Optimizer.Cost.nested_loop ~outer_rows:o ~inner_base_rows:i
           ~out_rows:out
        >= 0.);
      Alcotest.(check bool) "smj >= 0" true
        (Optimizer.Cost.sort_merge ~outer_rows:o ~inner_base_rows:i
           ~inner_rows:r ~out_rows:out
        >= 0.);
      Alcotest.(check bool) "hj >= 0" true
        (Optimizer.Cost.hash ~outer_rows:o ~inner_base_rows:i ~inner_rows:r
           ~out_rows:out
        >= 0.))
    [ (0., 0., 0., 0.); (-1., 5., 5., -2.); (10., 10., 10., 10.) ]

(* --- DP enumerator --- *)

let s8_db_query scale =
  (Datagen.Section8.build ~scale ~seed:1 (), Datagen.Section8.query_scaled ~scale)

let test_dp_produces_full_plan () =
  let db, q = s8_db_query 50 in
  let profile = Els.prepare Els.Config.els db q in
  let node = Optimizer.Dp.optimize profile q in
  Alcotest.(check int) "all tables" 4
    (List.length (Exec.Plan.join_order node.Optimizer.Dp.plan));
  Alcotest.(check int) "history length" 3
    (List.length (Els.Incremental.history node.Optimizer.Dp.state));
  Alcotest.(check bool) "cost positive" true (node.Optimizer.Dp.cost > 0.)

let test_dp_respects_methods () =
  let db, q = s8_db_query 50 in
  let profile = Els.prepare Els.Config.els db q in
  let node =
    Optimizer.Dp.optimize ~methods:[ Exec.Plan.Nested_loop ] profile q
  in
  let rec methods_of = function
    | Exec.Plan.Scan _ -> []
    | Exec.Plan.Join { method_; outer; inner; _ } ->
      (method_ :: methods_of outer) @ methods_of inner
  in
  Alcotest.(check bool) "only NL used" true
    (List.for_all
       (fun m -> m = Exec.Plan.Nested_loop)
       (methods_of node.Optimizer.Dp.plan));
  Alcotest.(check bool) "no methods rejected" true
    (match Optimizer.Dp.optimize ~methods:[] profile q with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_dp_plan_executes_correctly () =
  let db, q = s8_db_query 20 in
  List.iter
    (fun config ->
      let profile = Els.prepare config db q in
      let node = Optimizer.Dp.optimize profile q in
      let rows, _, _ = Exec.Executor.count db node.Optimizer.Dp.plan in
      (* scale 20: s < 5 over keys 1..50 gives 4 matching rows. *)
      Alcotest.(check int)
        (Printf.sprintf "%s plan result" (Els.Config.name config))
        4 rows)
    [ Els.Config.sm ~ptc:false; Els.Config.sm ~ptc:true; Els.Config.sss;
      Els.Config.els ]

let test_dp_avoids_cartesian_when_possible () =
  let db, q = s8_db_query 50 in
  let profile = Els.prepare (Els.Config.sm ~ptc:false) db q in
  let node = Optimizer.Dp.optimize profile q in
  (* Without closure the only connected orders are along the chain
     s-m-b-g; adjacent tables in the chosen order must share a predicate. *)
  let order = Exec.Plan.join_order node.Optimizer.Dp.plan in
  let adjacent_connected =
    let edges = [ ("s", "m"); ("m", "b"); ("b", "g") ] in
    let connected a b =
      List.exists (fun (x, y) -> (x = a && y = b) || (x = b && y = a)) edges
    in
    let rec check covered = function
      | [] -> true
      | t :: rest ->
        List.exists (fun p -> connected p t) covered && check (t :: covered) rest
    in
    match order with
    | first :: rest -> check [ first ] rest
    | [] -> false
  in
  Alcotest.(check bool) "chain respected" true adjacent_connected

let test_dp_cartesian_fallback () =
  (* A query with no join predicate at all must still plan (as a cross
     product). *)
  let db = Catalog.Db.create () in
  let rng = Datagen.Prng.create 5 in
  ignore
    (Datagen.Tablegen.register (Datagen.Prng.split rng) db ~table:"a" ~rows:10
       [ Datagen.Tablegen.key_column "x" ~rows:10 ]);
  ignore
    (Datagen.Tablegen.register (Datagen.Prng.split rng) db ~table:"b" ~rows:7
       [ Datagen.Tablegen.key_column "y" ~rows:7 ]);
  let q = Query.make ~tables:[ "a"; "b" ] [] in
  let profile = Els.prepare Els.Config.els db q in
  let node = Optimizer.Dp.optimize profile q in
  let rows, _, _ = Exec.Executor.count db node.Optimizer.Dp.plan in
  Alcotest.(check int) "cross product size" 70 rows;
  check_float "estimate matches" 70. node.Optimizer.Dp.state.Els.Incremental.size

let test_scan_filters_placement () =
  let _, q = s8_db_query 10 in
  let profile = Els.prepare Els.Config.els (fst (s8_db_query 10)) q in
  (* Closure gives every table a local predicate. *)
  List.iter
    (fun table ->
      Alcotest.(check int)
        (Printf.sprintf "filter on %s" table)
        1
        (List.length (Optimizer.Dp.scan_filters profile table)))
    [ "s"; "m"; "b"; "g" ];
  (* Without closure, only s has one. *)
  let profile_nc = Els.prepare (Els.Config.sm ~ptc:false) (fst (s8_db_query 10)) q in
  Alcotest.(check int) "only s filtered" 1
    (List.length (Optimizer.Dp.scan_filters profile_nc "s"));
  Alcotest.(check int) "g unfiltered" 0
    (List.length (Optimizer.Dp.scan_filters profile_nc "g"))

let test_choose_reports () =
  let db, q = s8_db_query 50 in
  let choice = Optimizer.choose Els.Config.els db q in
  Alcotest.(check string) "algorithm name" "ELS" choice.Optimizer.algorithm;
  Alcotest.(check int) "estimates per join" 3
    (List.length choice.Optimizer.intermediate_estimates);
  Alcotest.(check bool) "join order covers query" true
    (List.sort compare choice.Optimizer.join_order
    = List.sort compare q.Query.tables);
  (* explain renders without raising *)
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Optimizer.explain ppf choice;
  Format.pp_print_flush ppf ();
  Alcotest.(check bool) "explain nonempty" true (Buffer.length buf > 0)

let test_single_table_query () =
  let db, _ = s8_db_query 50 in
  let q =
    Query.make ~tables:[ "s" ]
      [ Query.Predicate.cmp (c "s" "s") Rel.Cmp.Lt (Rel.Value.Int 5) ]
  in
  let choice = Optimizer.choose Els.Config.els db q in
  let rows, _, _ = Exec.Executor.count db choice.Optimizer.plan in
  Alcotest.(check int) "single-table scan" 4 rows

(* ?estimator re-profiles before enumeration: choosing with base ELS but
   estimator ss must match choosing with the ss-swapped config directly,
   and the reported algorithm name must reflect the swap. *)
let test_choose_estimator_override () =
  let db, q = s8_db_query 50 in
  let overridden =
    Optimizer.choose ~estimator:Els.Estimator.ss Els.Config.els db q
  in
  let direct =
    Optimizer.choose (Els.Config.with_estimator Els.Estimator.ss Els.Config.els)
      db q
  in
  Alcotest.(check string) "same algorithm name" direct.Optimizer.algorithm
    overridden.Optimizer.algorithm;
  Alcotest.(check (list string)) "same join order" direct.Optimizer.join_order
    overridden.Optimizer.join_order;
  Alcotest.(check (list (float 0.))) "same estimates"
    direct.Optimizer.intermediate_estimates
    overridden.Optimizer.intermediate_estimates;
  let baseline = Optimizer.choose Els.Config.els db q in
  Alcotest.(check bool) "override changes the report" false
    (String.equal baseline.Optimizer.algorithm overridden.Optimizer.algorithm)

let suite =
  [
    Alcotest.test_case "cost: sort" `Quick test_sort_cost;
    Alcotest.test_case "cost: estimates drive join choice" `Quick
      test_join_costs_reflect_estimates;
    Alcotest.test_case "cost: non-negative" `Quick test_costs_nonnegative;
    Alcotest.test_case "dp: full plan" `Quick test_dp_produces_full_plan;
    Alcotest.test_case "dp: method restriction" `Quick test_dp_respects_methods;
    Alcotest.test_case "dp: plans execute correctly" `Quick
      test_dp_plan_executes_correctly;
    Alcotest.test_case "dp: avoids cartesians" `Quick
      test_dp_avoids_cartesian_when_possible;
    Alcotest.test_case "dp: cartesian fallback" `Quick test_dp_cartesian_fallback;
    Alcotest.test_case "dp: scan filter placement" `Quick
      test_scan_filters_placement;
    Alcotest.test_case "choose: reporting" `Quick test_choose_reports;
    Alcotest.test_case "choose: estimator override" `Quick
      test_choose_estimator_override;
    Alcotest.test_case "single-table query" `Quick test_single_table_query;
  ]
