(* Unit tests for estimation profiles: local effects (Section 5) and
   single-table j-equivalent columns (Section 6). *)

let check_float = Helpers.check_float
let int_ n = Rel.Value.Int n
let c t col = Query.Cref.v t col

(* One table r: 1000 rows, join column a (d=100, domain 1..100) and
   predicate column p (d=50, domain 1..50); second table u joins on a. *)
let two_col_db () =
  let db = Catalog.Db.create () in
  let schema name cols =
    Rel.Schema.make
      (List.map
         (fun cname -> Rel.Schema.column ~table:name ~name:cname Rel.Value.Ty_int)
         cols)
  in
  Catalog.Db.add db
    (Catalog.Table.stats_only ~name:"r" ~schema:(schema "r" [ "a"; "p" ])
       ~row_count:1000
       ~column_stats:
         [
           ( "a",
             Stats.Col_stats.with_bounds ~distinct:100 ~lo:(int_ 1)
               ~hi:(int_ 100) );
           ( "p",
             Stats.Col_stats.with_bounds ~distinct:50 ~lo:(int_ 1) ~hi:(int_ 50)
           );
         ]);
  Catalog.Db.add db
    (Catalog.Table.stats_only ~name:"u" ~schema:(schema "u" [ "a" ])
       ~row_count:500
       ~column_stats:
         [
           ( "a",
             Stats.Col_stats.with_bounds ~distinct:100 ~lo:(int_ 1)
               ~hi:(int_ 100) );
         ]);
  db

let join_query preds =
  Query.make ~tables:[ "r"; "u" ]
    (Query.Predicate.col_eq (c "r" "a") (c "u" "a") :: preds)

let test_no_local_preds () =
  let profile = Els.prepare Els.Config.els (two_col_db ()) (join_query []) in
  let r = Els.Profile.table profile "r" in
  check_float "rows unchanged" 1000. r.Els.Profile.rows;
  check_float "sel 1" 1. r.Els.Profile.local_selectivity;
  check_float "join card unchanged" 100. (Els.Profile.join_card profile (c "r" "a"))

let test_equality_on_join_column () =
  (* a = 42: rows drop to 1000/100 = 10, d'_a = 1. *)
  let q = join_query [ Query.Predicate.cmp (c "r" "a") Rel.Cmp.Eq (int_ 42) ] in
  let profile = Els.prepare Els.Config.els (two_col_db ()) q in
  let r = Els.Profile.table profile "r" in
  check_float "rows = ‖R‖/d" 10. r.Els.Profile.rows;
  check_float "d' = 1" 1. (Els.Profile.join_card profile (c "r" "a"))

let test_range_on_join_column () =
  (* a <= 50: sel 0.5; d'_a = 100 * 0.5 = 50. *)
  let q = join_query [ Query.Predicate.cmp (c "r" "a") Rel.Cmp.Le (int_ 50) ] in
  let profile = Els.prepare Els.Config.els (two_col_db ()) q in
  let r = Els.Profile.table profile "r" in
  check_float "rows halved" 500. r.Els.Profile.rows;
  check_float "d' halved" 50. (Els.Profile.join_card profile (c "r" "a"))

let test_urn_thinning_other_column () =
  (* p = 7 on the non-join column: rows -> 20; the join column thins
     according to the urn model: 100 * (1 - (1 - 1/100)^20) ≈ 18.2. *)
  let q = join_query [ Query.Predicate.cmp (c "r" "p") Rel.Cmp.Eq (int_ 7) ] in
  let profile = Els.prepare Els.Config.els (two_col_db ()) q in
  let r = Els.Profile.table profile "r" in
  check_float "rows" 20. r.Els.Profile.rows;
  let expected = Stats.Urn.expected_distinct ~urns:100. ~balls:20. in
  check_float ~eps:1e-9 "urn-thinned join card" expected
    (Els.Profile.join_card profile (c "r" "a"))

let test_local_blind_configuration () =
  (* The standard algorithm ignores local effects in join cardinalities
     but still reduces the row count. *)
  let q = join_query [ Query.Predicate.cmp (c "r" "a") Rel.Cmp.Le (int_ 50) ] in
  let profile = Els.prepare (Els.Config.sm ~ptc:true) (two_col_db ()) q in
  let r = Els.Profile.table profile "r" in
  check_float "rows still reduced" 500. r.Els.Profile.rows;
  check_float "join card stays base" 100.
    (Els.Profile.join_card profile (c "r" "a"))

let test_contradiction_zeroes () =
  let q =
    join_query
      [
        Query.Predicate.cmp (c "r" "a") Rel.Cmp.Eq (int_ 10);
        Query.Predicate.cmp (c "r" "a") Rel.Cmp.Eq (int_ 20);
      ]
  in
  let profile = Els.prepare Els.Config.els (two_col_db ()) q in
  let r = Els.Profile.table profile "r" in
  check_float "rows 0" 0. r.Els.Profile.rows

(* Section 6 generalization: three j-equivalent columns in one table.
   d1=4, d2=10, d3=20, ‖R‖=4000: ‖R‖' = ceil(4000/(10*20)) = 20,
   rep card = ceil(4 * (1 - (3/4)^20)). *)
let test_single_table_three_columns () =
  let db = Catalog.Db.create () in
  let schema =
    Rel.Schema.make
      (List.map
         (fun n -> Rel.Schema.column ~table:"r" ~name:n Rel.Value.Ty_int)
         [ "c1"; "c2"; "c3" ])
  in
  Catalog.Db.add db
    (Catalog.Table.stats_only ~name:"r" ~schema ~row_count:4000
       ~column_stats:
         [
           ("c1", Stats.Col_stats.trivial ~distinct:4);
           ("c2", Stats.Col_stats.trivial ~distinct:10);
           ("c3", Stats.Col_stats.trivial ~distinct:20);
         ]);
  Catalog.Db.add db (Helpers.stats_table "s" 100 [ ("x", 50) ]);
  let q =
    Query.make ~tables:[ "r"; "s" ]
      [
        Query.Predicate.col_eq (c "s" "x") (c "r" "c1");
        Query.Predicate.col_eq (c "s" "x") (c "r" "c2");
        Query.Predicate.col_eq (c "s" "x") (c "r" "c3");
      ]
  in
  let profile = Els.prepare Els.Config.els db q in
  let r = Els.Profile.table profile "r" in
  check_float "rows = ceil(‖R‖ / (d2 d3))" 20. r.Els.Profile.rows;
  let expected =
    Float.ceil (Stats.Urn.expected_distinct ~urns:4. ~balls:20.)
  in
  List.iter
    (fun col ->
      check_float
        (Printf.sprintf "rep card for %s" col)
        expected
        (Els.Profile.join_card profile (c "r" col)))
    [ "c1"; "c2"; "c3" ]

(* With the Section 6 treatment off, intra-table equalities reduce rows by
   1/max(d1,d2) each (the classic Selinger handling). *)
let test_selinger_fallback () =
  let db = Helpers.section6_db () in
  let q = Helpers.section6_query () in
  let profile = Els.prepare { Els.Config.sss with Els.Config.single_table = false } db q in
  let r2 = Els.Profile.table profile "r2" in
  (* Closure adds (r2.y = r2.w); 1000 / max(10, 50) = 20. *)
  check_float "selinger rows" 20. r2.Els.Profile.rows

let test_profile_errors () =
  let db = two_col_db () in
  let profile = Els.prepare Els.Config.els db (join_query []) in
  Alcotest.check_raises "unknown table" Not_found (fun () ->
      ignore (Els.Profile.table profile "zz"))

(* Mixed-case lookups must resolve to the same table, filters and
   predicates as lowercase ones: normalization is centralized in Profile,
   so a caller holding "R" cannot silently lose scan filters or eligible
   join predicates. *)
let test_case_normalization () =
  let q = join_query [ Query.Predicate.cmp (c "r" "p") Rel.Cmp.Le (int_ 10) ] in
  let profile = Els.prepare Els.Config.els (two_col_db ()) q in
  Alcotest.(check int) "table_bit case-insensitive"
    (Els.Profile.table_bit profile "r")
    (Els.Profile.table_bit profile "R");
  Alcotest.(check int) "scan_filters survive mixed case" 1
    (List.length (Els.Profile.scan_filters profile "R"));
  Alcotest.(check (list string)) "Dp.scan_filters agrees"
    (List.map Query.Predicate.to_string (Optimizer.Dp.scan_filters profile "r"))
    (List.map Query.Predicate.to_string
       (Optimizer.Dp.scan_filters profile "R"));
  let st = Els.Incremental.start profile "R" in
  Alcotest.(check (list string)) "start normalizes" [ "r" ]
    (Els.Incremental.joined profile st);
  Alcotest.(check int) "eligible survives mixed case" 1
    (List.length (Els.Incremental.eligible profile st "U"));
  let st2 = Els.Incremental.extend profile st "U" in
  Alcotest.(check int) "extend normalizes" 2
    (List.length (Els.Incremental.joined profile st2))

(* The per-table index partitions the working conjunction: every join
   predicate appears under both endpoint tables, locals under their only
   table, with roots resolved at build time. *)
let test_index_contents () =
  let q = join_query [ Query.Predicate.cmp (c "r" "p") Rel.Cmp.Le (int_ 10) ] in
  let profile = Els.prepare Els.Config.els (two_col_db ()) q in
  Alcotest.(check int) "two tables" 2 (Els.Profile.table_count profile);
  Alcotest.(check int) "two predicates" 2 (Els.Profile.pred_count profile);
  let join_info =
    Els.Profile.pred profile
      (Els.Profile.table_bit profile "r" |> fun bit ->
       profile.Els.Profile.index.Els.Profile.join_preds_by_table.(bit).(0))
  in
  (match join_info.Els.Profile.endpoints with
  | Some (a, b) ->
    Alcotest.(check bool) "endpoints are the two table bits" true
      (List.sort compare [ a; b ]
      = List.sort compare
          [
            Els.Profile.table_bit profile "r"; Els.Profile.table_bit profile "u";
          ])
  | None -> Alcotest.fail "join predicate lost its endpoints");
  Alcotest.(check bool) "root resolved to the class representative" true
    (Query.Cref.equal join_info.Els.Profile.root
       (Els.Eqclass.find profile.Els.Profile.classes (c "r" "a")))

let suite =
  [
    Alcotest.test_case "no local predicates" `Quick test_no_local_preds;
    Alcotest.test_case "equality on join column" `Quick
      test_equality_on_join_column;
    Alcotest.test_case "range on join column" `Quick test_range_on_join_column;
    Alcotest.test_case "urn thinning of other columns" `Quick
      test_urn_thinning_other_column;
    Alcotest.test_case "local-blind configuration" `Quick
      test_local_blind_configuration;
    Alcotest.test_case "contradiction zeroes the table" `Quick
      test_contradiction_zeroes;
    Alcotest.test_case "section 6 with three columns" `Quick
      test_single_table_three_columns;
    Alcotest.test_case "selinger fallback" `Quick test_selinger_fallback;
    Alcotest.test_case "errors" `Quick test_profile_errors;
    Alcotest.test_case "case normalization" `Quick test_case_normalization;
    Alcotest.test_case "hot-path index contents" `Quick test_index_contents;
  ]
