(* Property-based tests (qcheck, registered through qcheck-alcotest).

   The centerpiece is the testable content of the paper's correctness
   proof for Rule LS: on data satisfying the uniformity and containment
   assumptions exactly, the incremental LS estimate equals Equation 3 and
   equals the executed true size, for every join order. *)

let count = 100

(* --- generators --- *)

(* A single-equivalence-class chain: n tables, table i has distinct count
   d_i and every value appears exactly m_i times (rows = d_i * m_i), with
   domains 1..d_i (containment holds exactly). *)
type chain_spec = {
  dims : (int * int) list; (* (distinct, multiplicity) per table *)
  seed : int;
}

let gen_chain_spec =
  QCheck2.Gen.(
    let* n = int_range 2 4 in
    let* dims = list_repeat n (pair (int_range 2 12) (int_range 1 5)) in
    let* seed = int_range 0 10000 in
    return { dims; seed })

let print_chain_spec spec =
  Printf.sprintf "seed=%d dims=[%s]" spec.seed
    (String.concat "; "
       (List.map (fun (d, m) -> Printf.sprintf "(%d,%d)" d m) spec.dims))

let build_chain spec =
  let rng = Datagen.Prng.create spec.seed in
  let db = Catalog.Db.create () in
  let names = List.mapi (fun i _ -> Printf.sprintf "t%d" (i + 1)) spec.dims in
  List.iter2
    (fun name (distinct, mult) ->
      ignore
        (Datagen.Tablegen.register (Datagen.Prng.split rng) db ~table:name
           ~rows:(distinct * mult)
           [ Datagen.Tablegen.column "a" ~distinct ]))
    names spec.dims;
  let rec links = function
    | a :: (b :: _ as rest) ->
      Query.Predicate.col_eq (Query.Cref.v a "a") (Query.Cref.v b "a")
      :: links rest
    | [ _ ] | [] -> []
  in
  (db, Query.make ~tables:names (links names), names)

let equation3 spec =
  let ds = List.map fst spec.dims in
  let d_min = List.fold_left min max_int ds in
  let rows = List.fold_left (fun acc (d, m) -> acc *. float_of_int (d * m)) 1. spec.dims in
  let denom =
    (* all distinct counts except one occurrence of the smallest *)
    let prod = List.fold_left (fun acc d -> acc *. float_of_int d) 1. ds in
    prod /. float_of_int d_min
  in
  rows /. denom

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y <> x) l in
        List.map (fun p -> x :: p) (permutations rest))
      l

let close a b =
  Float.abs (a -. b) <= 1e-6 *. Float.max 1. (Float.max (Float.abs a) (Float.abs b))

(* Theorem (Section 7): Rule LS agrees with Equation 3 and with the true
   size, for every join order. *)
let prop_ls_equals_truth =
  QCheck2.Test.make ~count ~name:"LS = Equation 3 = executed size (all orders)"
    ~print:print_chain_spec gen_chain_spec (fun spec ->
      let db, query, names = build_chain spec in
      let eq3 = equation3 spec in
      let truth =
        float_of_int
          (Exec.Executor.run_query db query).Exec.Executor.row_count
      in
      let profile = Els.prepare Els.Config.els db query in
      close eq3 truth
      && List.for_all
           (fun order -> close (Els.Incremental.final_size profile order) eq3)
           (permutations names))

(* Bushy generalization of the theorem: every binary bracketing of the
   tables (built with join_states) yields the Equation 3 size under LS. *)
let rec bracketings profile = function
  | [] -> []
  | [ t ] -> [ Els.Incremental.start profile t ]
  | tables ->
    (* Split at each point; to bound the blow-up only the first two split
       positions are explored per level. *)
    let n = List.length tables in
    List.concat_map
      (fun k ->
        let left = List.filteri (fun i _ -> i < k) tables in
        let right = List.filteri (fun i _ -> i >= k) tables in
        List.concat_map
          (fun ls ->
            List.map
              (fun rs -> Els.Incremental.join_states profile ls rs)
              (bracketings profile right))
          (bracketings profile left))
      (List.filteri (fun i _ -> i < 2) (List.init (n - 1) (fun i -> i + 1)))

let prop_ls_bushy =
  QCheck2.Test.make ~count:60 ~name:"LS bushy bracketings = Equation 3"
    ~print:print_chain_spec gen_chain_spec (fun spec ->
      let db, query, names = build_chain spec in
      let eq3 = equation3 spec in
      let profile = Els.prepare Els.Config.els db query in
      List.for_all
        (fun st -> close st.Els.Incremental.size eq3)
        (bracketings profile names))

(* Rule M's and Rule SS's estimates never exceed Rule LS's. *)
let prop_rule_ordering =
  QCheck2.Test.make ~count ~name:"est_M <= est_SS <= est_LS"
    ~print:print_chain_spec gen_chain_spec (fun spec ->
      let db, query, names = build_chain spec in
      let est config =
        Els.estimate config db query names
      in
      let m = est (Els.Config.sm ~ptc:true)
      and ss = est Els.Config.sss
      and ls = est Els.Config.els in
      m <= ss +. 1e-9 && ss <= ls +. 1e-9)

(* Closure soundness: every derived predicate holds on every tuple of the
   executed join result. *)
let prop_closure_sound =
  QCheck2.Test.make ~count:40 ~name:"closure is sound on executed data"
    ~print:print_chain_spec gen_chain_spec (fun spec ->
      let db, query, _ = build_chain spec in
      let closed = Els.Closure.close_query query in
      let result = Exec.Executor.run_query db query in
      let schema = Rel.Relation.schema result.Exec.Executor.relation in
      List.for_all
        (fun p ->
          let holds = Query.Eval.compile schema p in
          Rel.Relation.fold
            (fun acc tuple -> acc && holds tuple)
            true result.Exec.Executor.relation)
        closed.Query.predicates)

(* The three join algorithms produce identical multisets of rows. *)
let gen_join_inputs =
  QCheck2.Gen.(
    let value = int_range 1 8 in
    let* left = list_size (int_range 0 30) value in
    let* right = list_size (int_range 0 30) value in
    return (left, right))

let prop_join_methods_agree =
  QCheck2.Test.make ~count ~name:"NL = HJ = SMJ on random bags"
    ~print:(fun (l, r) ->
      Printf.sprintf "left=[%s] right=[%s]"
        (String.concat ";" (List.map string_of_int l))
        (String.concat ";" (List.map string_of_int r)))
    gen_join_inputs
    (fun (left, right) ->
      let rel table vals =
        Rel.Relation.of_tuples
          (Rel.Schema.make
             [ Rel.Schema.column ~table ~name:"a" Rel.Value.Ty_int ])
          (List.map (fun v -> [| Rel.Value.Int v |]) vals)
      in
      let r = rel "r" left and s = rel "s" right in
      let pred =
        Query.Predicate.col_eq (Query.Cref.v "r" "a") (Query.Cref.v "s" "a")
      in
      let rows op =
        List.sort compare
          (List.map Array.to_list
             (Rel.Relation.to_list (Exec.Operator.to_relation op)))
      in
      let counters = Exec.Counters.create () in
      let nl =
        rows
          (Exec.Nested_loop.join counters [ pred ]
             ~outer:(Exec.Operator.of_relation r)
             ~make_inner:(fun () -> Exec.Operator.of_relation s))
      in
      let hj =
        rows
          (Exec.Hash_join.join counters [ pred ]
             ~outer:(Exec.Operator.of_relation r)
             ~inner:(Exec.Operator.of_relation s))
      in
      let sm =
        rows
          (Exec.Sort_merge.join counters [ pred ]
             ~outer:(Exec.Operator.of_relation r)
             ~inner:(Exec.Operator.of_relation s))
      in
      nl = hj && hj = sm)

(* Urn model bounds: 0 <= E <= min(urns, balls), and monotonicity. *)
let prop_urn_bounds =
  QCheck2.Test.make ~count:500 ~name:"urn: 0 <= E <= min(n, k), monotone"
    ~print:(fun (n, k) -> Printf.sprintf "n=%d k=%d" n k)
    QCheck2.Gen.(pair (int_range 1 1_000_000) (int_range 1 1_000_000))
    (fun (n, k) ->
      let e = Stats.Urn.expected_distinct ~urns:(float_of_int n) ~balls:(float_of_int k) in
      let e_fewer =
        Stats.Urn.expected_distinct ~urns:(float_of_int n)
          ~balls:(float_of_int (max 1 (k / 2)))
      in
      e >= 0.
      && e <= float_of_int (min n k) +. 1e-6
      && e_fewer <= e +. 1e-9)

(* Selectivity estimates always land in [0, 1]. *)
let gen_sel_case =
  QCheck2.Gen.(
    let* d = int_range 1 1000 in
    let* lo = int_range (-100) 100 in
    let* width = int_range 0 1000 in
    let* c = int_range (-300) 1300 in
    let* op = oneofl Rel.Cmp.[ Eq; Ne; Lt; Le; Gt; Ge ] in
    return (d, lo, lo + width, c, op))

let prop_selectivity_in_unit =
  QCheck2.Test.make ~count:500 ~name:"selectivity estimates in [0,1]"
    ~print:(fun (d, lo, hi, c, op) ->
      Printf.sprintf "d=%d lo=%d hi=%d c=%d op=%s" d lo hi c
        (Rel.Cmp.to_string op))
    gen_sel_case
    (fun (d, lo, hi, c, op) ->
      let stats =
        Stats.Col_stats.with_bounds ~distinct:d ~lo:(Rel.Value.Int lo)
          ~hi:(Rel.Value.Int hi)
      in
      let s = Stats.Selectivity_est.comparison stats op (Rel.Value.Int c) in
      s >= 0. && s <= 1.)

(* Combining local predicates never yields a selectivity outside [0,1],
   and adding predicates never increases it. *)
let gen_local_preds =
  QCheck2.Gen.(
    list_size (int_range 1 5)
      (pair (oneofl Rel.Cmp.[ Eq; Ne; Lt; Le; Gt; Ge ]) (int_range 1 100)))

let prop_combine_monotone =
  QCheck2.Test.make ~count:500
    ~name:"local predicate combination: bounded and monotone"
    ~print:(fun preds ->
      String.concat " AND "
        (List.map
           (fun (op, c) -> Printf.sprintf "x %s %d" (Rel.Cmp.to_string op) c)
           preds))
    gen_local_preds
    (fun preds ->
      let stats =
        Stats.Col_stats.with_bounds ~distinct:100 ~lo:(Rel.Value.Int 1)
          ~hi:(Rel.Value.Int 100)
      in
      let preds = List.map (fun (op, c) -> (op, Rel.Value.Int c)) preds in
      let combined = Els.Local_pred.combine stats preds in
      let s = combined.Els.Local_pred.selectivity in
      let rec prefixes acc = function
        | [] -> [ List.rev acc ]
        | p :: rest -> List.rev acc :: prefixes (p :: acc) rest
      in
      let monotone =
        List.for_all
          (fun prefix ->
            (Els.Local_pred.combine stats prefix).Els.Local_pred.selectivity
            >= s -. 1e-9)
          (prefixes [] preds)
      in
      s >= 0. && s <= 1. && monotone)

(* Closure is idempotent and only grows the predicate set. *)
let gen_predicates =
  QCheck2.Gen.(
    let cref =
      let* t = int_range 1 3 in
      let* c = int_range 1 3 in
      return (Query.Cref.v (Printf.sprintf "t%d" t) (Printf.sprintf "c%d" c))
    in
    list_size (int_range 1 6)
      (oneof
         [
           (let* a = cref in
            let* b = cref in
            return
              (if Query.Cref.equal a b then
                 Query.Predicate.cmp a Rel.Cmp.Eq (Rel.Value.Int 1)
               else Query.Predicate.col_eq a b));
           (let* a = cref in
            let* op = oneofl Rel.Cmp.[ Eq; Lt; Gt ] in
            let* c = int_range 1 50 in
            return (Query.Predicate.cmp a op (Rel.Value.Int c)));
         ]))

let prop_closure_idempotent =
  QCheck2.Test.make ~count:300 ~name:"closure idempotent and extensive"
    ~print:(fun preds ->
      String.concat " AND " (List.map Query.Predicate.to_string preds))
    gen_predicates
    (fun preds ->
      let once = (Els.Closure.compute preds).Els.Closure.predicates in
      let twice = (Els.Closure.compute once).Els.Closure.predicates in
      let module PS = Query.Predicate.Set in
      PS.equal (PS.of_list once) (PS.of_list twice)
      && PS.subset (PS.of_list preds) (PS.of_list once))

(* Prng.shuffle produces a permutation. *)
let prop_shuffle_permutes =
  QCheck2.Test.make ~count:200 ~name:"shuffle is a permutation"
    ~print:(fun (seed, n) -> Printf.sprintf "seed=%d n=%d" seed n)
    QCheck2.Gen.(pair (int_range 0 1000) (int_range 0 200))
    (fun (seed, n) ->
      let rng = Datagen.Prng.create seed in
      let arr = Array.init n Fun.id in
      Datagen.Prng.shuffle rng arr;
      let sorted = Array.copy arr in
      Array.sort Int.compare sorted;
      sorted = Array.init n Fun.id)

(* CSV round-trip: relations of ints, floats, bools, non-numeric strings
   and NULLs survive to_string / relation_of_string unchanged. *)
let gen_csv_relation =
  QCheck2.Gen.(
    let value ty =
      let* null = int_range 0 9 in
      if null = 0 then return Rel.Value.Null
      else
        match ty with
        | `I ->
          let* n = int_range (-1000) 1000 in
          return (Rel.Value.Int n)
        | `B ->
          let* b = bool in
          return (Rel.Value.Bool b)
        | `S ->
          (* Strings that cannot be mistaken for numbers or booleans,
             exercising quoting. *)
          let* tag = int_range 0 999 in
          let* tricky = oneofl [ ""; ","; "\""; "\n"; "x y" ] in
          return (Rel.Value.String (Printf.sprintf "s%d%s" tag tricky))
    in
    let* tys = list_size (int_range 1 4) (oneofl [ `I; `B; `S ]) in
    let* rows = list_size (int_range 0 20) (flatten_l (List.map value tys)) in
    return (tys, rows))

let prop_csv_roundtrip =
  QCheck2.Test.make ~count:200 ~name:"CSV round-trip"
    ~print:(fun (tys, rows) ->
      Printf.sprintf "%d cols, %d rows" (List.length tys) (List.length rows))
    gen_csv_relation
    (fun (tys, rows) ->
      let schema =
        Rel.Schema.make
          (List.mapi
             (fun i ty ->
               Rel.Schema.column ~table:"t"
                 ~name:(Printf.sprintf "c%d" i)
                 (match ty with
                 | `I -> Rel.Value.Ty_int
                 | `B -> Rel.Value.Ty_bool
                 | `S -> Rel.Value.Ty_string))
             tys)
      in
      let rel =
        Rel.Relation.of_tuples schema (List.map Array.of_list rows)
      in
      let back =
        Rel.Csv.relation_of_string ~table:"t" (Rel.Csv.to_string rel)
      in
      Rel.Relation.cardinality back = Rel.Relation.cardinality rel
      && List.for_all2 Rel.Tuple.equal (Rel.Relation.to_list rel)
           (Rel.Relation.to_list back))

(* Profile invariants on random chain queries with a local predicate:
   effective rows and cardinalities are bounded by their base values, and
   every rule's estimate is bounded by the filtered cartesian product. *)
let gen_profiled_spec =
  QCheck2.Gen.(
    let* spec = gen_chain_spec in
    let* cutoff = int_range 1 12 in
    return (spec, cutoff))

let prop_profile_invariants =
  QCheck2.Test.make ~count:200 ~name:"profile invariants"
    ~print:(fun (spec, cutoff) ->
      Printf.sprintf "%s cutoff=%d" (print_chain_spec spec) cutoff)
    gen_profiled_spec
    (fun (spec, cutoff) ->
      let db, query, names = build_chain spec in
      let query =
        Query.with_predicates query
          (Query.Predicate.cmp
             (Query.Cref.v (List.hd names) "a")
             Rel.Cmp.Le (Rel.Value.Int cutoff)
          :: query.Query.predicates)
      in
      List.for_all
        (fun config ->
          let profile = Els.prepare config db query in
          let tables_ok =
            List.for_all
              (fun name ->
                let tp = Els.Profile.table profile name in
                tp.Els.Profile.rows >= 0.
                && tp.Els.Profile.rows <= tp.Els.Profile.base_rows +. 1e-9
                && Query.Cref.Map.for_all
                     (fun _ col ->
                       col.Els.Profile.join_distinct >= 0.
                       && col.Els.Profile.join_distinct
                          <= col.Els.Profile.base_distinct +. 1e-9)
                     tp.Els.Profile.columns)
              names
          in
          let cartesian_bound =
            List.fold_left
              (fun acc name ->
                acc *. (Els.Profile.table profile name).Els.Profile.rows)
              1. names
          in
          tables_ok
          && Els.Incremental.final_size profile names
             <= cartesian_bound +. 1e-6)
        (Els.Config.panel ()))

(* Rule M never depends on the join order: every predicate of the working
   conjunction is counted exactly once by the time the order completes, so
   all permutations agree on the final estimate (Section 3 — Rule M is
   consistently wrong rather than order-sensitive). *)
let prop_rule_m_order_invariant =
  QCheck2.Test.make ~count ~name:"rule M final estimate is order-invariant"
    ~print:print_chain_spec gen_chain_spec (fun spec ->
      let db, query, names = build_chain spec in
      let profile = Els.prepare (Els.Config.sm ~ptc:true) db query in
      match permutations names with
      | [] -> true
      | first :: rest ->
        let reference = Els.Incremental.final_size profile first in
        List.for_all
          (fun order ->
            close (Els.Incremental.final_size profile order) reference)
          rest)

(* Rule LS structure: at every step of every order, the eligible
   predicates partition into equivalence-class groups (pairwise-distinct
   roots, within-group shared root, sizes summing to the eligible count)
   and the step selectivity is exactly one selectivity — the largest —
   per class, multiplied across classes. *)
let prop_ls_one_selectivity_per_class =
  QCheck2.Test.make ~count
    ~name:"rule LS: one selectivity per equivalence class per step"
    ~print:print_chain_spec gen_chain_spec (fun spec ->
      let db, query, names = build_chain spec in
      let profile = Els.prepare Els.Config.els db query in
      let root p =
        match Query.Predicate.columns p with
        | col :: _ -> Els.Eqclass.find profile.Els.Profile.classes col
        | [] -> assert false
      in
      let step_ok st name =
        let elig = Els.Incremental.eligible profile st name in
        let groups = Els.Selectivity.group_by_class profile elig in
        let partition_ok =
          List.length elig
          = List.fold_left (fun acc g -> acc + List.length g) 0 groups
          && List.for_all
               (fun g ->
                 match g with
                 | [] -> false
                 | p :: rest ->
                   List.for_all
                     (fun q -> Query.Cref.equal (root p) (root q))
                     rest)
               groups
          &&
          let roots = List.map (fun g -> root (List.hd g)) groups in
          List.length (List.sort_uniq Query.Cref.compare roots)
          = List.length roots
        in
        let one_per_class =
          List.fold_left
            (fun acc g ->
              acc
              *. List.fold_left
                   (fun m p -> Float.max m (Els.Selectivity.join profile p))
                   0. g)
            1. groups
        in
        partition_ok
        && close (Els.Incremental.step_selectivity profile st name) one_per_class
      in
      List.for_all
        (fun order ->
          match order with
          | [] -> true
          | first :: rest ->
            let _, ok =
              List.fold_left
                (fun (st, ok) name ->
                  ( Els.Incremental.extend profile st name,
                    ok && step_ok st name ))
                (Els.Incremental.start profile first, true)
                rest
            in
            ok)
        (permutations names))

(* The selectivity memo caches are estimate-transparent: cache-on and
   cache-off profiles produce bit-identical sizes at every step of every
   order, under every registered estimator's canonical configuration. *)
let prop_cache_transparent =
  QCheck2.Test.make ~count ~name:"memo cache is bit-identical to uncached"
    ~print:print_chain_spec gen_chain_spec (fun spec ->
      let db, query, names = build_chain spec in
      List.for_all
        (fun config ->
          let cached = Els.prepare config db query in
          let uncached = Els.prepare ~memoize:false config db query in
          List.for_all
            (fun order ->
              let a = Els.Incremental.estimate_order cached order in
              let b = Els.Incremental.estimate_order uncached order in
              Float.equal a.Els.Incremental.size b.Els.Incremental.size
              && List.for_all2 Float.equal (Els.Incremental.history a)
                   (Els.Incremental.history b))
            (permutations names))
        (Els.Config.panel ()))

(* Differential: the indexed bitset hot path returns exactly the same
   eligible predicates (same order) and bit-identical step selectivities
   as the retained list-scan reference implementation, for every
   registered estimator. *)
let prop_index_matches_scan =
  QCheck2.Test.make ~count ~name:"indexed hot path = list-scan baseline"
    ~print:print_chain_spec gen_chain_spec (fun spec ->
      let db, query, names = build_chain spec in
      List.for_all
        (fun config ->
          let profile = Els.prepare config db query in
          List.for_all
            (fun order ->
              match order with
              | [] -> true
              | first :: rest ->
                let _, ok =
                  List.fold_left
                    (fun (st, ok) name ->
                      let joined = Els.Incremental.joined profile st in
                      let agree =
                        List.equal Query.Predicate.equal
                          (Els.Incremental.eligible profile st name)
                          (Els.Incremental.eligible_scan profile joined name)
                        && Float.equal
                             (Els.Incremental.step_selectivity profile st name)
                             (Els.Incremental.step_selectivity_scan profile
                                joined name)
                      in
                      (Els.Incremental.extend profile st name, ok && agree))
                    (Els.Incremental.start profile first, true)
                    rest
                in
                ok)
            (permutations names))
        (Els.Config.panel ()))

(* Key-join chains: every value appears exactly once per table
   (multiplicity 1), so each table's join column is a key and each step's
   true size is the running minimum of the distinct counts. On such data
   the pessimistic estimator's per-step cap min(|R1|', |R2|') is exact
   and Rule LS never exceeds it; with multiplicity > 1 this ordering can
   fail (min of row counts is not an output bound in general), which is
   why the property is stated on key joins only — matching the scope of
   the degree-1 Lp-norm bound PESS implements. *)
let gen_key_chain_spec =
  QCheck2.Gen.(
    let* n = int_range 2 4 in
    let* dims = list_repeat n (map (fun d -> (d, 1)) (int_range 2 12)) in
    let* seed = int_range 0 10000 in
    return { dims; seed })

let prop_pess_bounds_ls_on_key_joins =
  QCheck2.Test.make ~count
    ~name:"PESS >= LS at every step on key-join chains"
    ~print:print_chain_spec gen_key_chain_spec (fun spec ->
      let db, query, names = build_chain spec in
      List.for_all
        (fun order ->
          let ls = Els.intermediate_sizes Els.Config.els db query order in
          let pess = Els.intermediate_sizes Els.Config.pess db query order in
          List.for_all2
            (fun p l -> p >= l -. (1e-9 *. Float.abs l))
            pess ls)
        (permutations names))

(* Cost model sanity: each join cost is monotone in the outer cardinality
   and non-negative. *)
let prop_cost_monotone =
  QCheck2.Test.make ~count:300 ~name:"join costs monotone in outer rows"
    ~print:(fun (o, i, r) -> Printf.sprintf "o=%g i=%g r=%g" o i r)
    QCheck2.Gen.(
      let pos = map float_of_int (int_range 0 100000) in
      triple pos pos pos)
    (fun (o, i, r) ->
      let r = Float.min r i in
      let bigger = o +. 17. in
      let checks =
        [
          ( Optimizer.Cost.nested_loop ~outer_rows:o ~inner_base_rows:i
              ~out_rows:0.,
            Optimizer.Cost.nested_loop ~outer_rows:bigger ~inner_base_rows:i
              ~out_rows:0. );
          ( Optimizer.Cost.sort_merge ~outer_rows:o ~inner_base_rows:i
              ~inner_rows:r ~out_rows:0.,
            Optimizer.Cost.sort_merge ~outer_rows:bigger ~inner_base_rows:i
              ~inner_rows:r ~out_rows:0. );
          ( Optimizer.Cost.hash ~outer_rows:o ~inner_base_rows:i ~inner_rows:r
              ~out_rows:0.,
            Optimizer.Cost.hash ~outer_rows:bigger ~inner_base_rows:i
              ~inner_rows:r ~out_rows:0. );
          ( Optimizer.Cost.index_nested_loop ~outer_rows:o ~inner_base_rows:i
              ~out_rows:0.,
            Optimizer.Cost.index_nested_loop ~outer_rows:bigger
              ~inner_base_rows:i ~out_rows:0. );
        ]
      in
      List.for_all (fun (small, big) -> small >= 0. && small <= big +. 1e-9) checks)

(* --- comparison joins --------------------------------------------------- *)

type cmp_op = Op_lt | Op_le | Op_gt | Op_ge | Op_band of float

let comparison_of_op = function
  | Op_lt -> Query.Predicate.Lt
  | Op_le -> Query.Predicate.Le
  | Op_gt -> Query.Predicate.Gt
  | Op_ge -> Query.Predicate.Ge
  | Op_band eps -> Query.Predicate.Band eps

let op_to_string = function
  | Op_lt -> "<"
  | Op_le -> "<="
  | Op_gt -> ">"
  | Op_ge -> ">="
  | Op_band eps -> Printf.sprintf "band(%g)" eps

(* Random bags with the odd NULL, each side independently int- or
   float-typed (so cross-type comparisons are exercised): the generalized
   sort-merge must produce exactly the rows the nested-loop oracle does,
   for every comparison operator including bands. *)
let gen_comparison_inputs =
  QCheck2.Gen.(
    let side =
      let* is_float = bool in
      let value =
        frequency
          [
            ( 9,
              if is_float then
                map
                  (fun v -> Rel.Value.Float (float_of_int v /. 2.))
                  (int_range 1 24)
              else map (fun v -> Rel.Value.Int v) (int_range 1 12) );
            (1, return Rel.Value.Null);
          ]
      in
      let* vals = list_size (int_range 0 25) value in
      return (is_float, vals)
    in
    let* left = side in
    let* right = side in
    let* op =
      oneofl [ Op_lt; Op_le; Op_gt; Op_ge; Op_band 0.; Op_band 2.5 ]
    in
    return (left, right, op))

let print_comparison_inputs ((_, left), (_, right), op) =
  Printf.sprintf "op=%s left=[%s] right=[%s]" (op_to_string op)
    (String.concat ";" (List.map Rel.Value.to_string left))
    (String.concat ";" (List.map Rel.Value.to_string right))

let prop_comparison_sort_merge_oracle =
  QCheck2.Test.make ~count ~name:"comparison SMJ = NL oracle on random bags"
    ~print:print_comparison_inputs gen_comparison_inputs
    (fun ((lfloat, left), (rfloat, right), op) ->
      let rel table is_float vals =
        let ty = if is_float then Rel.Value.Ty_float else Rel.Value.Ty_int in
        Rel.Relation.of_tuples
          (Rel.Schema.make [ Rel.Schema.column ~table ~name:"a" ty ])
          (List.map (fun v -> [| v |]) vals)
      in
      let r = rel "r" lfloat left and s = rel "s" rfloat right in
      let pred =
        Query.Predicate.col_cmp (Query.Cref.v "r" "a") (comparison_of_op op)
          (Query.Cref.v "s" "a")
      in
      let rows op_ =
        List.sort compare
          (List.map Array.to_list
             (Rel.Relation.to_list (Exec.Operator.to_relation op_)))
      in
      let counters = Exec.Counters.create () in
      let nl =
        rows
          (Exec.Nested_loop.join counters [ pred ]
             ~outer:(Exec.Operator.of_relation r)
             ~make_inner:(fun () -> Exec.Operator.of_relation s))
      in
      let sm =
        rows
          (Exec.Sort_merge.join counters [ pred ]
             ~outer:(Exec.Operator.of_relation r)
             ~inner:(Exec.Operator.of_relation s))
      in
      nl = sm)

(* Convolution selectivities stay probabilities whatever the statistics —
   with histograms, with bare min/max bounds, or with none at all. *)
let gen_conv_inputs =
  QCheck2.Gen.(
    let* lvals = list_size (int_range 0 40) (int_range ~-20 50) in
    let* rvals = list_size (int_range 0 40) (int_range ~-20 50) in
    let* lhist = bool in
    let* rhist = bool in
    let* op = oneofl [ Op_lt; Op_le; Op_gt; Op_ge; Op_band 3. ] in
    return (lvals, rvals, lhist, rhist, op))

let stats_of_ints ~histogram vals =
  let arr = Array.of_list (List.map (fun v -> Rel.Value.Int v) vals) in
  if histogram then
    Stats.Col_stats.of_values ~histogram:Stats.Histogram.Equi_depth
      ~histogram_buckets:8 arr
  else Stats.Col_stats.of_values arr

let prop_convolution_in_unit =
  QCheck2.Test.make ~count:300
    ~name:"join_comparison/join_band in [0,1] for any statistics"
    ~print:(fun (l, r, lh, rh, op) ->
      Printf.sprintf "op=%s lhist=%b rhist=%b |l|=%d |r|=%d" (op_to_string op)
        lh rh (List.length l) (List.length r))
    gen_conv_inputs
    (fun (lvals, rvals, lhist, rhist, op) ->
      let left = stats_of_ints ~histogram:lhist lvals in
      let right = stats_of_ints ~histogram:rhist rvals in
      let s =
        match op with
        | Op_band eps -> Stats.Selectivity_est.join_band left ~eps right
        | Op_lt -> Stats.Selectivity_est.join_comparison left Rel.Cmp.Lt right
        | Op_le -> Stats.Selectivity_est.join_comparison left Rel.Cmp.Le right
        | Op_gt -> Stats.Selectivity_est.join_comparison left Rel.Cmp.Gt right
        | Op_ge -> Stats.Selectivity_est.join_comparison left Rel.Cmp.Ge right
      in
      Float.is_finite s && s >= 0. && s <= 1.)

(* On point-mass histograms (every bucket a single value) the convolution
   has no interpolation left to do: it must equal the exact pair-counting
   probability. *)
let point_stats vals =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun v ->
      Hashtbl.replace tbl v
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl v)))
    vals;
  let entries =
    List.sort compare (Hashtbl.fold (fun v c acc -> (v, c) :: acc) tbl [])
  in
  let buckets =
    List.map
      (fun (v, c) ->
        { Stats.Histogram.lo = float_of_int v; hi = float_of_int v;
          count = float_of_int c; distinct = 1. })
      entries
  in
  {
    Stats.Col_stats.distinct = List.length entries;
    nulls = 0;
    min_value = Some (Rel.Value.Int (fst (List.hd entries)));
    max_value = Some (Rel.Value.Int (fst (List.nth entries (List.length entries - 1))));
    histogram = Some (Stats.Histogram.of_buckets Stats.Histogram.Equi_width buckets);
    mcv = None;
    distinct_sketch = None;
    degree = None;
  }

let exact_probability lvals rvals test =
  let pairs = List.length lvals * List.length rvals in
  let hits =
    List.fold_left
      (fun acc a ->
        List.fold_left
          (fun acc b -> if test a b then acc + 1 else acc)
          acc rvals)
      0 lvals
  in
  float_of_int hits /. float_of_int pairs

let prop_convolution_point_mass_exact =
  QCheck2.Test.make ~count:300
    ~name:"convolution exact on point-mass histograms"
    ~print:(fun (l, r, op) ->
      Printf.sprintf "op=%s left=[%s] right=[%s]" (op_to_string op)
        (String.concat ";" (List.map string_of_int l))
        (String.concat ";" (List.map string_of_int r)))
    QCheck2.Gen.(
      let vals = list_size (int_range 1 30) (int_range 1 15) in
      triple vals vals (oneofl [ Op_lt; Op_le; Op_gt; Op_ge; Op_band 2. ]))
    (fun (lvals, rvals, op) ->
      let left = point_stats lvals and right = point_stats rvals in
      let estimated, expected =
        match op with
        | Op_lt ->
          ( Stats.Selectivity_est.join_comparison left Rel.Cmp.Lt right,
            exact_probability lvals rvals (fun a b -> a < b) )
        | Op_le ->
          ( Stats.Selectivity_est.join_comparison left Rel.Cmp.Le right,
            exact_probability lvals rvals (fun a b -> a <= b) )
        | Op_gt ->
          ( Stats.Selectivity_est.join_comparison left Rel.Cmp.Gt right,
            exact_probability lvals rvals (fun a b -> a > b) )
        | Op_ge ->
          ( Stats.Selectivity_est.join_comparison left Rel.Cmp.Ge right,
            exact_probability lvals rvals (fun a b -> a >= b) )
        | Op_band eps ->
          ( Stats.Selectivity_est.join_band left ~eps right,
            exact_probability lvals rvals (fun a b ->
                Float.abs (float_of_int a -. float_of_int b) <= eps) )
      in
      Float.abs (estimated -. expected) <= 1e-9)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_ls_equals_truth;
      prop_rule_ordering;
      prop_closure_sound;
      prop_join_methods_agree;
      prop_urn_bounds;
      prop_selectivity_in_unit;
      prop_combine_monotone;
      prop_closure_idempotent;
      prop_shuffle_permutes;
      prop_csv_roundtrip;
      prop_profile_invariants;
      prop_cost_monotone;
      prop_ls_bushy;
      prop_rule_m_order_invariant;
      prop_ls_one_selectivity_per_class;
      prop_cache_transparent;
      prop_index_matches_scan;
      prop_pess_bounds_ls_on_key_joins;
      prop_comparison_sort_merge_oracle;
      prop_convolution_in_unit;
      prop_convolution_point_mass_exact;
    ]
