(* Unit tests for the typed query IR: column refs, predicates, queries,
   predicate evaluation. *)

module P = Query.Predicate

let x = Query.Cref.v "r1" "x"
let y = Query.Cref.v "r2" "y"
let w = Query.Cref.v "r2" "w"

(* --- Cref --- *)

let test_cref () =
  Alcotest.(check string) "lower-cased" "r1.x"
    (Query.Cref.to_string (Query.Cref.v "R1" "X"));
  Alcotest.(check bool) "equal" true (Query.Cref.equal x (Query.Cref.v "r1" "x"));
  Alcotest.(check bool) "same_table" true (Query.Cref.same_table y w);
  Alcotest.(check bool) "different tables" false (Query.Cref.same_table x y);
  Alcotest.(check int) "set of refs" 2
    (Query.Cref.Set.cardinal (Query.Cref.Set.of_list [ x; y; x ]))

(* --- Predicate --- *)

let test_predicate_canonical () =
  let p1 = P.col_eq x y and p2 = P.col_eq y x in
  Alcotest.(check bool) "orientation canonical" true (P.equal p1 p2);
  Alcotest.(check int) "set dedups" 1
    (P.Set.cardinal (P.Set.of_list [ p1; p2 ]));
  Alcotest.check_raises "self equality rejected"
    (Invalid_argument "Predicate.col_cmp: column compared with itself")
    (fun () -> ignore (P.col_eq x x))

let test_predicate_classification () =
  Alcotest.(check bool) "cross-table is join" true (P.is_join (P.col_eq x y));
  Alcotest.(check bool) "same-table is local" true (P.is_local (P.col_eq y w));
  Alcotest.(check bool) "cmp is local" true
    (P.is_local (P.cmp x Rel.Cmp.Lt (Rel.Value.Int 5)));
  Alcotest.(check (list string)) "tables of join" [ "r1"; "r2" ]
    (P.tables (P.col_eq x y));
  Alcotest.(check (list string)) "tables of local" [ "r2" ]
    (P.tables (P.col_eq y w))

let test_predicate_references () =
  let p = P.col_eq x y in
  Alcotest.(check bool) "covered" true (P.references_only [ "r1"; "r2" ] p);
  Alcotest.(check bool) "not covered" false (P.references_only [ "r1" ] p);
  Alcotest.(check string) "to_string" "r1.x = r2.y" (P.to_string p);
  Alcotest.(check string) "cmp to_string" "r1.x < 5"
    (P.to_string (P.cmp x Rel.Cmp.Lt (Rel.Value.Int 5)))

(* --- Query --- *)

let test_query_validation () =
  Alcotest.check_raises "duplicate table"
    (Invalid_argument "Query.make: duplicate table in FROM") (fun () ->
      ignore (Query.make ~tables:[ "a"; "a" ] []));
  Alcotest.(check bool) "unknown table in predicate" true
    (match Query.make ~tables:[ "r1" ] [ P.col_eq x y ] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "unknown projected column" true
    (match
       Query.make ~projection:(Query.Columns [ y ]) ~tables:[ "r1" ] []
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_query_partitions () =
  let q =
    Query.make ~tables:[ "r1"; "r2" ]
      [
        P.col_eq x y;
        P.col_eq y w;
        P.cmp x Rel.Cmp.Gt (Rel.Value.Int 0);
      ]
  in
  Alcotest.(check int) "join preds" 1 (List.length (Query.join_predicates q));
  Alcotest.(check int) "local preds" 2 (List.length (Query.local_predicates q));
  Alcotest.(check int) "locals on r2" 1
    (List.length (Query.predicates_on_table q "r2"));
  Alcotest.(check int) "locals on r1" 1
    (List.length (Query.predicates_on_table q "r1"));
  let q2 = Query.with_predicates q [] in
  Alcotest.(check int) "with_predicates" 0 (List.length q2.Query.predicates)

let test_query_to_string () =
  let q =
    Query.make ~projection:Query.Count_star ~tables:[ "r1"; "r2" ]
      [ P.col_eq x y ]
  in
  Alcotest.(check string) "rendering"
    "SELECT COUNT(*) FROM r1, r2 WHERE r1.x = r2.y" (Query.to_string q)

(* --- Eval --- *)

let eval_schema =
  Rel.Schema.make
    [
      Rel.Schema.column ~table:"r1" ~name:"x" Rel.Value.Ty_int;
      Rel.Schema.column ~table:"r2" ~name:"y" Rel.Value.Ty_int;
    ]

let tup a b = Rel.Tuple.of_list [ a; b ]

let test_eval_col_eq () =
  let p = P.col_eq x y in
  let holds = Query.Eval.compile eval_schema p in
  Alcotest.(check bool) "equal values" true
    (holds (tup (Rel.Value.Int 3) (Rel.Value.Int 3)));
  Alcotest.(check bool) "unequal" false
    (holds (tup (Rel.Value.Int 3) (Rel.Value.Int 4)));
  Alcotest.(check bool) "null never matches" false
    (holds (tup Rel.Value.Null Rel.Value.Null))

let test_eval_cmp () =
  let p = P.cmp x Rel.Cmp.Le (Rel.Value.Int 10) in
  let holds = Query.Eval.compile eval_schema p in
  Alcotest.(check bool) "10 <= 10" true
    (holds (tup (Rel.Value.Int 10) Rel.Value.Null));
  Alcotest.(check bool) "11 > 10" false
    (holds (tup (Rel.Value.Int 11) Rel.Value.Null));
  Alcotest.(check bool) "null fails" false
    (holds (tup Rel.Value.Null Rel.Value.Null))

let test_eval_all_and_errors () =
  let conj =
    Query.Eval.compile_all eval_schema
      [ P.cmp x Rel.Cmp.Gt (Rel.Value.Int 0); P.col_eq x y ]
  in
  Alcotest.(check bool) "conjunction holds" true
    (conj (tup (Rel.Value.Int 2) (Rel.Value.Int 2)));
  Alcotest.(check bool) "conjunction fails" false
    (conj (tup (Rel.Value.Int 0) (Rel.Value.Int 0)));
  Alcotest.(check bool) "empty conjunction true" true
    ((Query.Eval.compile_all eval_schema []) (tup Rel.Value.Null Rel.Value.Null));
  Alcotest.(check bool) "missing column rejected" true
    (match
       Query.Eval.compile eval_schema (P.col_eq x (Query.Cref.v "zz" "q"))
         (tup Rel.Value.Null Rel.Value.Null)
     with
    | exception Invalid_argument _ -> true
    | (_ : bool) -> false)

let suite =
  [
    Alcotest.test_case "cref: basics" `Quick test_cref;
    Alcotest.test_case "predicate: canonical form" `Quick
      test_predicate_canonical;
    Alcotest.test_case "predicate: join/local" `Quick
      test_predicate_classification;
    Alcotest.test_case "predicate: references" `Quick test_predicate_references;
    Alcotest.test_case "query: validation" `Quick test_query_validation;
    Alcotest.test_case "query: partitions" `Quick test_query_partitions;
    Alcotest.test_case "query: rendering" `Quick test_query_to_string;
    Alcotest.test_case "eval: column equality" `Quick test_eval_col_eq;
    Alcotest.test_case "eval: comparison" `Quick test_eval_cmp;
    Alcotest.test_case "eval: conjunction and errors" `Quick
      test_eval_all_and_errors;
  ]
