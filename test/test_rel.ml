(* Unit tests for the relational base library. *)

module V = Rel.Value

let int_ n = V.Int n
let str s = V.String s

(* --- Value --- *)

let test_value_types () =
  Alcotest.(check (option string))
    "type of Int" (Some "int")
    (Option.map V.ty_name (V.type_of (int_ 3)));
  Alcotest.(check (option string))
    "type of Null" None
    (Option.map V.ty_name (V.type_of V.Null));
  Alcotest.(check bool) "null has every type" true (V.has_type V.Ty_string V.Null);
  Alcotest.(check bool) "int is not string" false (V.has_type V.Ty_string (int_ 1))

let test_value_compare () =
  Alcotest.(check bool) "3 < 5" true (V.compare (int_ 3) (int_ 5) < 0);
  Alcotest.(check bool) "null sorts first" true (V.compare V.Null (int_ 0) < 0);
  Alcotest.(check bool) "strings ordered" true (V.compare (str "a") (str "b") < 0);
  Alcotest.(check int) "equal values" 0 (V.compare (V.Float 2.5) (V.Float 2.5));
  Alcotest.(check bool)
    "cross-type order is fixed" true
    (V.compare (V.Bool true) (int_ 0) < 0)

let test_value_equal_hash () =
  Alcotest.(check bool) "equal ints" true (V.equal (int_ 7) (int_ 7));
  Alcotest.(check bool) "null = null structurally" true (V.equal V.Null V.Null);
  Alcotest.(check bool) "sql null never equal" false (V.sql_equal V.Null V.Null);
  Alcotest.(check bool) "sql equal on ints" true (V.sql_equal (int_ 7) (int_ 7));
  Alcotest.(check int) "hash agrees with equal" (V.hash (int_ 42)) (V.hash (int_ 42))

let test_value_extractors () =
  Alcotest.(check int) "int_exn" 9 (V.int_exn (int_ 9));
  Alcotest.(check (float 0.)) "float_exn coerces int" 4. (V.float_exn (int_ 4));
  Alcotest.check_raises "int_exn on string"
    (Invalid_argument "Value.int_exn: not an integer") (fun () ->
      ignore (V.int_exn (str "x")));
  Alcotest.(check string) "to_string" "NULL" (V.to_string V.Null)

(* --- Cmp --- *)

let test_cmp_eval () =
  Alcotest.(check bool) "3 < 5" true (Rel.Cmp.eval Rel.Cmp.Lt (int_ 3) (int_ 5));
  Alcotest.(check bool) "5 >= 5" true (Rel.Cmp.eval Rel.Cmp.Ge (int_ 5) (int_ 5));
  Alcotest.(check bool) "3 <> 5" true (Rel.Cmp.eval Rel.Cmp.Ne (int_ 3) (int_ 5));
  Alcotest.(check bool)
    "null comparisons are false" false
    (Rel.Cmp.eval Rel.Cmp.Eq V.Null V.Null)

let test_cmp_flip_negate () =
  let all = Rel.Cmp.[ Eq; Ne; Lt; Le; Gt; Ge ] in
  List.iter
    (fun op ->
      List.iter
        (fun (a, b) ->
          Alcotest.(check bool)
            (Printf.sprintf "flip %s" (Rel.Cmp.to_string op))
            (Rel.Cmp.eval op a b)
            (Rel.Cmp.eval (Rel.Cmp.flip op) b a);
          Alcotest.(check bool)
            (Printf.sprintf "negate %s" (Rel.Cmp.to_string op))
            (not (Rel.Cmp.eval op a b))
            (Rel.Cmp.eval (Rel.Cmp.negate op) a b))
        [ (int_ 1, int_ 2); (int_ 2, int_ 2); (int_ 3, int_ 2) ])
    all

(* --- Vec --- *)

let test_vec_basics () =
  let v = Rel.Vec.create () in
  Alcotest.(check bool) "empty" true (Rel.Vec.is_empty v);
  for i = 0 to 99 do
    Rel.Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Rel.Vec.length v);
  Alcotest.(check int) "get" 42 (Rel.Vec.get v 42);
  Rel.Vec.set v 42 (-1);
  Alcotest.(check int) "set" (-1) (Rel.Vec.get v 42);
  Alcotest.(check (option int)) "pop" (Some 99) (Rel.Vec.pop v);
  Alcotest.(check int) "length after pop" 99 (Rel.Vec.length v);
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Vec: index out of bounds") (fun () ->
      ignore (Rel.Vec.get v 99))

let test_vec_iteration () =
  let v = Rel.Vec.of_list [ 3; 1; 2 ] in
  Alcotest.(check int) "fold sum" 6 (Rel.Vec.fold_left ( + ) 0 v);
  Alcotest.(check (list int)) "map" [ 6; 2; 4 ]
    (Rel.Vec.to_list (Rel.Vec.map (fun x -> x * 2) v));
  Rel.Vec.sort Int.compare v;
  Alcotest.(check (list int)) "sort" [ 1; 2; 3 ] (Rel.Vec.to_list v);
  Alcotest.(check bool) "exists" true (Rel.Vec.exists (fun x -> x = 2) v);
  let w = Rel.Vec.of_list [ 9 ] in
  Rel.Vec.append w v;
  Alcotest.(check (list int)) "append" [ 9; 1; 2; 3 ] (Rel.Vec.to_list w)

(* --- Schema --- *)

let schema_abc () =
  Rel.Schema.make
    [
      Rel.Schema.column ~table:"t" ~name:"a" V.Ty_int;
      Rel.Schema.column ~table:"t" ~name:"b" V.Ty_string;
      Rel.Schema.column ~table:"u" ~name:"a" V.Ty_int;
    ]

let test_schema_lookup () =
  let s = schema_abc () in
  Alcotest.(check int) "arity" 3 (Rel.Schema.arity s);
  Alcotest.(check (option int)) "qualified" (Some 2)
    (Rel.Schema.index_of s ~table:"u" ~name:"a");
  Alcotest.(check (option int)) "case-insensitive" (Some 0)
    (Rel.Schema.index_of s ~table:"T" ~name:"A");
  Alcotest.(check bool) "unqualified unique" true
    (Rel.Schema.index_of_name s "b" = Ok 1);
  Alcotest.(check bool) "unqualified ambiguous" true
    (Rel.Schema.index_of_name s "a" = Error `Ambiguous);
  Alcotest.(check bool) "missing" true
    (Rel.Schema.index_of_name s "zz" = Error `Missing)

let test_schema_dup () =
  Alcotest.check_raises "duplicate column"
    (Invalid_argument "Schema.make: duplicate column t.a") (fun () ->
      ignore
        (Rel.Schema.make
           [
             Rel.Schema.column ~table:"t" ~name:"a" V.Ty_int;
             Rel.Schema.column ~table:"t" ~name:"a" V.Ty_int;
           ]))

let test_schema_ops () =
  let s = schema_abc () in
  let projected = Rel.Schema.project s [ 2; 0 ] in
  Alcotest.(check int) "project arity" 2 (Rel.Schema.arity projected);
  Alcotest.(check string) "project order" "u"
    (Rel.Schema.get projected 0).Rel.Schema.table;
  let renamed = Rel.Schema.rename_table s "x" in
  Alcotest.(check (option int)) "renamed" (Some 0)
    (Rel.Schema.index_of renamed ~table:"x" ~name:"a");
  let other =
    Rel.Schema.make [ Rel.Schema.column ~table:"v" ~name:"c" V.Ty_bool ]
  in
  Alcotest.(check int) "concat arity" 4 (Rel.Schema.arity (Rel.Schema.concat s other));
  Alcotest.(check bool) "equal to itself" true (Rel.Schema.equal s (schema_abc ()))

(* --- Tuple --- *)

let test_tuple_ops () =
  let t = Rel.Tuple.of_list [ int_ 1; str "x"; int_ 9 ] in
  Alcotest.(check int) "arity" 3 (Rel.Tuple.arity t);
  Alcotest.(check bool) "project" true
    (Rel.Tuple.equal (Rel.Tuple.project t [ 2; 0 ])
       (Rel.Tuple.of_list [ int_ 9; int_ 1 ]));
  let u = Rel.Tuple.of_list [ int_ 1; str "y"; int_ 9 ] in
  Alcotest.(check int) "compare_at equal positions" 0
    (Rel.Tuple.compare_at [ 0; 2 ] t u);
  Alcotest.(check bool) "compare_at differing" true
    (Rel.Tuple.compare_at [ 1 ] t u < 0);
  Alcotest.(check int) "hash_at consistent"
    (Rel.Tuple.hash_at [ 0; 2 ] t)
    (Rel.Tuple.hash_at [ 0; 2 ] u);
  Alcotest.(check int) "concat" 6
    (Rel.Tuple.arity (Rel.Tuple.concat t u))

(* --- Relation --- *)

let test_relation_basics () =
  let s =
    Rel.Schema.make
      [
        Rel.Schema.column ~table:"t" ~name:"a" V.Ty_int;
        Rel.Schema.column ~table:"t" ~name:"b" V.Ty_int;
      ]
  in
  let r = Rel.Relation.create s in
  List.iter
    (fun (a, b) -> Rel.Relation.insert_values r [ int_ a; int_ b ])
    [ (1, 10); (2, 20); (2, 30); (3, 10) ];
  Alcotest.(check int) "cardinality" 4 (Rel.Relation.cardinality r);
  Alcotest.(check int) "distinct a" 3 (Rel.Relation.distinct_count r 0);
  Alcotest.(check int) "distinct b" 3 (Rel.Relation.distinct_count r 1);
  Alcotest.(check (option (pair int int)))
    "min max a" (Some (1, 3))
    (Option.map
       (fun (lo, hi) -> (V.int_exn lo, V.int_exn hi))
       (Rel.Relation.min_max r 0));
  Alcotest.(check int) "column_values" 4
    (Array.length (Rel.Relation.column_values r 0))

let test_relation_conformance () =
  let s = Rel.Schema.make [ Rel.Schema.column ~table:"t" ~name:"a" V.Ty_int ] in
  let r = Rel.Relation.create s in
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Relation.insert: tuple does not conform to schema")
    (fun () -> Rel.Relation.insert_values r [ int_ 1; int_ 2 ]);
  Alcotest.check_raises "wrong type"
    (Invalid_argument "Relation.insert: tuple does not conform to schema")
    (fun () -> Rel.Relation.insert_values r [ str "no" ]);
  (* NULL conforms to any type. *)
  Rel.Relation.insert_values r [ V.Null ];
  Alcotest.(check int) "null inserted" 1 (Rel.Relation.cardinality r);
  Alcotest.(check int) "null not counted distinct" 0
    (Rel.Relation.distinct_count r 0);
  Alcotest.(check (option bool)) "min_max skips null" None
    (Option.map (fun _ -> true) (Rel.Relation.min_max r 0))

let test_relation_rename () =
  let s = Rel.Schema.make [ Rel.Schema.column ~table:"t" ~name:"a" V.Ty_int ] in
  let r = Rel.Relation.of_tuples s [ Rel.Tuple.of_list [ int_ 5 ] ] in
  let r2 = Rel.Relation.rename r "z" in
  Alcotest.(check string) "renamed table" "z"
    (Rel.Schema.get (Rel.Relation.schema r2) 0).Rel.Schema.table;
  Alcotest.(check int) "data shared" 1 (Rel.Relation.cardinality r2)

let suite =
  [
    Alcotest.test_case "value: types" `Quick test_value_types;
    Alcotest.test_case "value: compare" `Quick test_value_compare;
    Alcotest.test_case "value: equal and hash" `Quick test_value_equal_hash;
    Alcotest.test_case "value: extractors" `Quick test_value_extractors;
    Alcotest.test_case "cmp: eval" `Quick test_cmp_eval;
    Alcotest.test_case "cmp: flip and negate laws" `Quick test_cmp_flip_negate;
    Alcotest.test_case "vec: basics" `Quick test_vec_basics;
    Alcotest.test_case "vec: iteration" `Quick test_vec_iteration;
    Alcotest.test_case "schema: lookup" `Quick test_schema_lookup;
    Alcotest.test_case "schema: duplicate detection" `Quick test_schema_dup;
    Alcotest.test_case "schema: project/rename/concat" `Quick test_schema_ops;
    Alcotest.test_case "tuple: ops" `Quick test_tuple_ops;
    Alcotest.test_case "relation: basics" `Quick test_relation_basics;
    Alcotest.test_case "relation: conformance and nulls" `Quick
      test_relation_conformance;
    Alcotest.test_case "relation: rename" `Quick test_relation_rename;
  ]
