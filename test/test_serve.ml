(* The estimation service: protocol parsing totality, admission control,
   crash isolation and deadline behaviour, driven through the exact
   [Serve.Server.session] loop that [elsdb serve] runs — over pipe pairs,
   like the chaos harness but with hand-picked frames and deterministic
   clocks. *)

let sql = Harness.Fault.default_sql

(* --- protocol parsing --- *)

let test_protocol_parse () =
  let parse = Serve.Protocol.parse in
  (match parse (Printf.sprintf {|{"id":"a","op":"estimate","sql":"%s"}|} sql) with
  | Ok { Serve.Protocol.id = Some "a"; op = Estimate { sql = got; _ }; _ } ->
    Alcotest.(check string) "sql carried" sql got
  | Ok _ -> Alcotest.fail "parsed to the wrong request"
  | Error (_, e) -> Alcotest.failf "refused: %s" (Els.Els_error.to_string e));
  (* unknown ops are refused but still echo the id *)
  (match parse {|{"id":"b","op":"estimaet","sql":"x"}|} with
  | Error (Some "b", Els.Els_error.Invalid_query _) -> ()
  | Error _ -> Alcotest.fail "lost the id on an unknown op"
  | Ok _ -> Alcotest.fail "accepted an unknown op");
  (* unsupported protocol versions are refused with the id *)
  (match parse {|{"id":"c","v":99,"op":"health"}|} with
  | Error (Some "c", Els.Els_error.Invalid_query _) -> ()
  | Error _ | Ok _ -> Alcotest.fail "accepted protocol version 99");
  (* a frame that is valid JSON but not an object is anonymous *)
  (match parse "12345" with
  | Error (None, Els.Els_error.Invalid_query _) -> ()
  | Error _ | Ok _ -> Alcotest.fail "accepted a non-object frame");
  (* damaged JSON is a parse error, not an exception *)
  (match parse "{\"id\": \"d\", " with
  | Error (None, Els.Els_error.Parse_error _) -> ()
  | Error _ | Ok _ -> Alcotest.fail "accepted truncated JSON");
  (* oversized frames are refused before parsing *)
  (match parse ~max_frame_bytes:16 (String.make 64 'x') with
  | Error (None, Els.Els_error.Parse_error _) -> ()
  | Error _ | Ok _ -> Alcotest.fail "accepted an oversized frame");
  (* adversarially deep nesting is a parse error, not a stack overflow *)
  (match parse (String.make 10_000 '[') with
  | Error (None, Els.Els_error.Parse_error _) -> ()
  | Error _ | Ok _ -> Alcotest.fail "accepted pathological nesting");
  (* bad budgets are refused with the id *)
  match parse {|{"id":"e","op":"health","deadline_ms":-1}|} with
  | Error (Some "e", Els.Els_error.Invalid_query _) -> ()
  | Error _ | Ok _ -> Alcotest.fail "accepted a negative deadline"

(* --- session plumbing --- *)

type resp = {
  rid : string option;
  ok : bool;
  kind : string option;
  top : (string * Obs.Json.t) list;  (** top-level response fields *)
  err : (string * Obs.Json.t) list;  (** fields inside the error object *)
}

let parse_response line =
  match Obs.Json.of_string line with
  | Error e -> Alcotest.failf "unparseable response %S: %s" line e
  | Ok (Obs.Json.Obj top as json) ->
    let rid =
      match Obs.Json.member "id" json with
      | Some (Obs.Json.String s) -> Some s
      | _ -> None
    in
    let ok = Obs.Json.member "ok" json = Some (Obs.Json.Bool true) in
    let err =
      match Obs.Json.member "error" json with
      | Some (Obs.Json.Obj fields) -> fields
      | _ -> []
    in
    let kind =
      match List.assoc_opt "kind" err with
      | Some (Obs.Json.String k) -> Some k
      | _ -> None
    in
    { rid; ok; kind; top; err }
  | Ok _ -> Alcotest.failf "non-object response %S" line

(* Write every frame up front, close the request pipe, run the real
   session loop to completion, then read the response stream back. The
   response pipe's kernel buffer holds a small session's worth of output,
   so no concurrent reader is needed here (the chaos harness covers the
   streaming case). *)
let drive ?config frames =
  let db = Harness.Fault.base_db ~seed:11 () in
  let server = Serve.Server.create ?config db in
  let in_r, in_w = Unix.pipe ~cloexec:true () in
  let out_r, out_w = Unix.pipe ~cloexec:true () in
  let wc = Unix.out_channel_of_descr in_w in
  List.iter
    (fun f ->
      output_string wc f;
      output_char wc '\n')
    frames;
  close_out wc;
  let ic = Unix.in_channel_of_descr in_r in
  let oc = Unix.out_channel_of_descr out_w in
  let stats = Serve.Server.session server ic oc in
  close_out oc;
  close_in ic;
  let rc = Unix.in_channel_of_descr out_r in
  let rec read acc =
    match input_line rc with
    | line -> read (parse_response line :: acc)
    | exception End_of_file -> List.rev acc
  in
  let responses = read [] in
  close_in rc;
  (stats, responses)

let by_id responses id =
  match List.find_opt (fun r -> r.rid = Some id) responses with
  | Some r -> r
  | None -> Alcotest.failf "no response for id %S" id

(* --- the happy path: every op answered, ids echoed, drain counted --- *)

let test_session_basic () =
  let frames =
    [
      {|{"id":"h","op":"health"}|};
      Printf.sprintf {|{"id":"e1","op":"estimate","sql":"%s"}|} sql;
      Printf.sprintf
        {|{"id":"x","op":"explain","sql":"%s","enumerator":"greedy"}|} sql;
      Printf.sprintf {|{"id":"r","op":"run","sql":"%s"}|} sql;
      {|{"id":"a","op":"analyze"}|};
      {|{"id":"d","op":"drain"}|};
    ]
  in
  let stats, responses = drive frames in
  List.iter
    (fun id -> Alcotest.(check bool) (id ^ " ok") true (by_id responses id).ok)
    [ "h"; "e1"; "x"; "r"; "a"; "d" ];
  Alcotest.(check int) "all answered" 6 (List.length responses);
  Alcotest.(check int) "frames" 6 stats.Serve.Server.frames;
  Alcotest.(check int) "no internal errors" 0
    stats.Serve.Server.internal_errors;
  Alcotest.(check bool) "drained" true stats.Serve.Server.drained;
  (* the explain response discloses the anytime rung it was served from *)
  Alcotest.(check bool) "explain discloses rung" true
    (List.mem_assoc "rung" (by_id responses "x").top);
  (* analyze discloses how many columns carry degree statistics; the
     freshly-analyzed catalog must have collected some *)
  (match List.assoc_opt "degree_columns" (by_id responses "a").top with
  | Some (Obs.Json.Int n) ->
    Alcotest.(check bool) "analyze reports degree columns" true (n > 0)
  | _ -> Alcotest.fail "analyze response lacks integer degree_columns")

(* --- admission control: post-drain frames are shed, never dropped --- *)

let test_session_shed_after_drain () =
  let frames =
    [
      {|{"id":"d","op":"drain"}|};
      Printf.sprintf {|{"id":"late1","op":"estimate","sql":"%s"}|} sql;
      Printf.sprintf {|{"id":"late2","op":"run","sql":"%s"}|} sql;
    ]
  in
  let stats, responses = drive frames in
  Alcotest.(check bool) "drain ok" true (by_id responses "d").ok;
  List.iter
    (fun id ->
      let r = by_id responses id in
      Alcotest.(check bool) (id ^ " refused") false r.ok;
      Alcotest.(check (option string)) (id ^ " kind") (Some "overloaded") r.kind;
      Alcotest.(check bool) (id ^ " policy disclosed") true
        (List.assoc_opt "shed_policy" r.err
        = Some (Obs.Json.String "draining")))
    [ "late1"; "late2" ];
  Alcotest.(check int) "shed counted" 2 stats.Serve.Server.shed;
  Alcotest.(check int) "sheds are answers" 3 (List.length responses)

(* --- crash isolation: damage is refused, the worker survives --- *)

let test_session_damage_isolated () =
  let config =
    { Serve.Server.default_config with Serve.Server.max_frame_bytes = 256 }
  in
  let frames =
    [
      "this is not json";
      String.make 512 'x';
      {|{"id":"typo","op":"estimaet"}|};
      {|{"id":"nosql","op":"estimate"}|};
      {|{"id":"badtbl","op":"estimate","sql":"SELECT COUNT(*) FROM nowhere"}|};
      Printf.sprintf {|{"id":"fine","op":"estimate","sql":"%s"}|} sql;
      {|{"id":"d","op":"drain"}|};
    ]
  in
  let stats, responses = drive ~config frames in
  Alcotest.(check int) "every frame answered" 7 (List.length responses);
  (* the two id-less damaged frames got anonymous structured refusals *)
  Alcotest.(check int) "anonymous refusals" 2
    (List.length (List.filter (fun r -> r.rid = None) responses));
  List.iter
    (fun id -> Alcotest.(check bool) (id ^ " refused") false (by_id responses id).ok)
    [ "typo"; "nosql"; "badtbl" ];
  Alcotest.(check bool) "healthy request still served" true
    (by_id responses "fine").ok;
  Alcotest.(check bool) "drain completed" true (by_id responses "d").ok;
  Alcotest.(check int) "firewall never fired" 0
    stats.Serve.Server.internal_errors

(* --- deadlines: a mid-query budget trip is a structured answer with the
   anytime rung disclosed, and the worker lives on (fake clock, so the
   trip is deterministic — no real time involved) --- *)

let test_session_budget_trip () =
  (* Every budget-clock call advances 2 ms of fake time, so a 10 ms
     deadline survives admission and the dequeue check but trips inside
     optimize/execute — deterministically, on call count alone. *)
  let tick = ref 0.0 in
  let clock () =
    let v = !tick in
    tick := v +. 0.002;
    v
  in
  let config =
    {
      Serve.Server.default_config with
      Serve.Server.domains = 1;
      clock = Some clock;
    }
  in
  let frames =
    [
      Printf.sprintf {|{"id":"slow","op":"run","sql":"%s","deadline_ms":10}|}
        sql;
      Printf.sprintf {|{"id":"after","op":"estimate","sql":"%s"}|} sql;
      {|{"id":"d","op":"drain"}|};
    ]
  in
  let stats, responses = drive ~config frames in
  let slow = by_id responses "slow" in
  Alcotest.(check bool) "tripped request refused" false slow.ok;
  Alcotest.(check (option string)) "budget-exhausted" (Some "budget-exhausted")
    slow.kind;
  (* the refusal discloses which anytime rung the optimizer degraded to
     before the executor cancelled *)
  Alcotest.(check bool) "rung in provenance" true
    (List.mem_assoc "rung" slow.err);
  Alcotest.(check bool) "worker survived: next request ok" true
    (by_id responses "after").ok;
  Alcotest.(check bool) "drain completed" true (by_id responses "d").ok;
  Alcotest.(check int) "trip counted" 1 stats.Serve.Server.budget_trips;
  Alcotest.(check int) "not an internal error" 0
    stats.Serve.Server.internal_errors

let suite =
  [
    Alcotest.test_case "protocol: parse totality" `Quick test_protocol_parse;
    Alcotest.test_case "session: every op answered" `Quick test_session_basic;
    Alcotest.test_case "session: post-drain sheds" `Quick
      test_session_shed_after_drain;
    Alcotest.test_case "session: damage isolated" `Quick
      test_session_damage_isolated;
    Alcotest.test_case "session: budget trip mid-query" `Quick
      test_session_budget_trip;
  ]
