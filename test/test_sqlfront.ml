(* Unit tests for the SQL front end: lexer, parser, binder. *)

let tokens_exn input =
  match Sqlfront.Lexer.tokenize input with
  | Ok toks -> toks
  | Error e -> Alcotest.fail (Sqlfront.Lexer.error_to_string e)

(* --- Lexer --- *)

let test_lexer_basics () =
  let toks = tokens_exn "SELECT * FROM t WHERE a = 1;" in
  Alcotest.(check int) "token count" 10 (List.length toks);
  Alcotest.(check bool) "keywords case-insensitive" true
    (List.hd (tokens_exn "select") = Sqlfront.Token.Kw_select);
  Alcotest.(check bool) "identifiers lower-cased" true
    (List.hd (tokens_exn "MyTable") = Sqlfront.Token.Ident "mytable")

let test_lexer_literals () =
  Alcotest.(check bool) "int" true
    (List.hd (tokens_exn "42") = Sqlfront.Token.Int_lit 42);
  Alcotest.(check bool) "float" true
    (List.hd (tokens_exn "2.5") = Sqlfront.Token.Float_lit 2.5);
  Alcotest.(check bool) "exponent" true
    (List.hd (tokens_exn "1e3") = Sqlfront.Token.Float_lit 1000.);
  Alcotest.(check bool) "string" true
    (List.hd (tokens_exn "'hi'") = Sqlfront.Token.String_lit "hi");
  Alcotest.(check bool) "escaped quote" true
    (List.hd (tokens_exn "'it''s'") = Sqlfront.Token.String_lit "it's")

let test_lexer_operators () =
  let ops input expected =
    Alcotest.(check bool) input true
      (List.hd (tokens_exn input) = Sqlfront.Token.Op expected)
  in
  ops "=" Rel.Cmp.Eq;
  ops "<" Rel.Cmp.Lt;
  ops "<=" Rel.Cmp.Le;
  ops ">" Rel.Cmp.Gt;
  ops ">=" Rel.Cmp.Ge;
  ops "<>" Rel.Cmp.Ne;
  ops "!=" Rel.Cmp.Ne

let test_lexer_errors () =
  Alcotest.(check bool) "unterminated string" true
    (Result.is_error (Sqlfront.Lexer.tokenize "'oops"));
  Alcotest.(check bool) "bad char" true
    (Result.is_error (Sqlfront.Lexer.tokenize "a ? b"));
  Alcotest.(check bool) "lone bang" true
    (Result.is_error (Sqlfront.Lexer.tokenize "a ! b"))

(* --- Parser --- *)

let parse_exn input =
  match Sqlfront.Parser.parse input with
  | Ok q -> q
  | Error e -> Alcotest.fail e

let test_parser_shapes () =
  let q = parse_exn "SELECT * FROM a, b WHERE a.x = b.y AND a.x > 3" in
  Alcotest.(check (list string)) "from" [ "a"; "b" ]
    (List.map (fun f -> f.Sqlfront.Ast.table) q.Sqlfront.Ast.from);
  Alcotest.(check int) "conditions" 2 (List.length q.Sqlfront.Ast.where);
  Alcotest.(check bool) "star" true (q.Sqlfront.Ast.select = Sqlfront.Ast.Sel_star);
  let q2 = parse_exn "SELECT COUNT(*) FROM t" in
  Alcotest.(check bool) "count star" true
    (q2.Sqlfront.Ast.select = Sqlfront.Ast.Sel_count_star);
  let q3 = parse_exn "SELECT COUNT() FROM t" in
  Alcotest.(check bool) "count empty" true
    (q3.Sqlfront.Ast.select = Sqlfront.Ast.Sel_count_star);
  let q4 = parse_exn "SELECT t.a, b FROM t" in
  Alcotest.(check bool) "column list" true
    (match q4.Sqlfront.Ast.select with
    | Sqlfront.Ast.Sel_columns [ c1; c2 ] ->
      c1.Sqlfront.Ast.qualifier = Some "t" && c2.Sqlfront.Ast.qualifier = None
    | _ -> false)

let test_parser_literals_sides () =
  let q = parse_exn "SELECT * FROM t WHERE 5 < a" in
  Alcotest.(check bool) "literal lhs" true
    (match q.Sqlfront.Ast.where with
    | [
        Sqlfront.Ast.Cmp
          { lhs = Sqlfront.Ast.Lit (Rel.Value.Int 5); op = Rel.Cmp.Lt; _ };
      ] ->
      true
    | _ -> false)

let test_parser_aliases () =
  let q = parse_exn "SELECT * FROM emp e1, emp AS e2, dept" in
  Alcotest.(check (list (pair string (option string))))
    "aliases"
    [ ("emp", Some "e1"); ("emp", Some "e2"); ("dept", None) ]
    (List.map
       (fun f -> (f.Sqlfront.Ast.table, f.Sqlfront.Ast.alias))
       q.Sqlfront.Ast.from)

let test_parser_between () =
  let q = parse_exn "SELECT * FROM t WHERE a BETWEEN 3 AND 9 AND b = 1" in
  Alcotest.(check int) "two conditions" 2 (List.length q.Sqlfront.Ast.where);
  (match q.Sqlfront.Ast.where with
  | [ Sqlfront.Ast.Between { lo; hi; _ }; Sqlfront.Ast.Cmp _ ] ->
    Alcotest.(check bool) "lower bound" true
      (lo.Sqlfront.Ast.base = Sqlfront.Ast.Lit (Rel.Value.Int 3)
      && lo.Sqlfront.Ast.offset = 0.);
    Alcotest.(check bool) "upper bound" true
      (hi.Sqlfront.Ast.base = Sqlfront.Ast.Lit (Rel.Value.Int 9)
      && hi.Sqlfront.Ast.offset = 0.)
  | _ -> Alcotest.fail "unexpected shape");
  (* Band spelling: bounds shift a column by a signed offset. *)
  let q = parse_exn "SELECT * FROM r, s WHERE r.a BETWEEN s.b - 0.5 AND s.b + 0.5" in
  match q.Sqlfront.Ast.where with
  | [ Sqlfront.Ast.Between { lo; hi; _ } ] ->
    Alcotest.(check (float 0.)) "lo offset" (-0.5) lo.Sqlfront.Ast.offset;
    Alcotest.(check (float 0.)) "hi offset" 0.5 hi.Sqlfront.Ast.offset;
    Alcotest.(check bool) "column bases" true
      (match lo.Sqlfront.Ast.base, hi.Sqlfront.Ast.base with
      | Sqlfront.Ast.Col c1, Sqlfront.Ast.Col c2 ->
        c1.Sqlfront.Ast.name = "b" && c2.Sqlfront.Ast.name = "b"
      | _ -> false)
  | _ -> Alcotest.fail "unexpected band shape"

let test_parser_errors () =
  List.iter
    (fun sql ->
      Alcotest.(check bool) sql true
        (Result.is_error (Sqlfront.Parser.parse sql)))
    [
      "";
      "SELECT";
      "SELECT * FROM";
      "SELECT * WHERE a = 1";
      "SELECT * FROM t WHERE";
      "SELECT * FROM t WHERE a";
      "SELECT * FROM t WHERE a = ";
      "SELECT * FROM t WHERE a BETWEEN 3";
      "SELECT * FROM t WHERE a BETWEEN 3 AND";
      "FROM t SELECT *";
    ]

(* Table-driven: every malformed input must fail with the expected byte
   offset and a message naming what was expected/found. Eof errors point
   one past the input. *)
let test_parser_error_positions () =
  List.iter
    (fun (sql, position, fragment) ->
      match Sqlfront.Parser.parse_structured sql with
      | Ok _ -> Alcotest.fail (Printf.sprintf "expected error for %S" sql)
      | Error e ->
        Alcotest.(check int)
          (Printf.sprintf "position of %S" sql)
          position e.Sqlfront.Parser.position;
        Alcotest.(check bool)
          (Printf.sprintf "message of %S mentions %S" sql fragment)
          true
          (Helpers.contains e.Sqlfront.Parser.message fragment))
    [
      (* parse errors *)
      ("", 0, "expected SELECT but found <eof>");
      ("FROM t SELECT *", 0, "expected SELECT but found FROM");
      ("SELECT", 6, "expected identifier but found <eof>");
      ("SELECT * WHERE a = 1", 9, "expected FROM but found WHERE");
      ("SELECT * FROM", 13, "expected identifier");
      ("SELECT * FROM t WHERE", 21, "expected operand");
      ("SELECT * FROM t WHERE a", 23, "expected comparison operator");
      ("SELECT * FROM t WHERE a = ", 26, "expected operand but found <eof>");
      ("SELECT * FROM t WHERE a BETWEEN 3", 33, "expected AND");
      ("SELECT * FROM t extra garbage", 22, "expected <eof>");
      (* lex errors, surfaced at their own offsets *)
      ("'oops", 0, "lex error: unterminated string literal");
      ("SELECT * FROM t WHERE a ? 1", 24, "unexpected character ?");
    ]

(* --- Binder --- *)

let binder_db () =
  let db = Catalog.Db.create () in
  List.iter (Catalog.Db.add db)
    [
      Helpers.stats_table "t" 100 [ ("a", 10); ("b", 20) ];
      Helpers.stats_table "u" 50 [ ("a", 5); ("c", 7) ];
    ];
  db

let compile_ok sql =
  match Sqlfront.Binder.compile (binder_db ()) sql with
  | Ok q -> q
  | Error e -> Alcotest.fail e

let compile_err sql =
  match Sqlfront.Binder.compile (binder_db ()) sql with
  | Ok _ -> Alcotest.fail (Printf.sprintf "expected error for %s" sql)
  | Error e -> e

let test_binder_resolution () =
  let q = compile_ok "SELECT * FROM t, u WHERE t.a = u.a AND b < 5" in
  Alcotest.(check int) "two predicates" 2 (List.length q.Query.predicates);
  (* Unqualified b resolves to t.b (unique). *)
  Alcotest.(check bool) "b bound to t" true
    (List.exists
       (fun p ->
         match p with
         | Query.Predicate.Cmp { col; _ } ->
           Query.Cref.equal col (Query.Cref.v "t" "b")
         | Query.Predicate.Col_cmp _ -> false)
       q.Query.predicates)

let test_binder_normalization () =
  (* Constant on the left is flipped to the right with the operator
     mirrored: 5 < a becomes a > 5. *)
  let q = compile_ok "SELECT * FROM t WHERE 5 < a" in
  Alcotest.(check bool) "flip" true
    (match q.Query.predicates with
    | [ Query.Predicate.Cmp { op = Rel.Cmp.Gt; const = Rel.Value.Int 5; _ } ] ->
      true
    | _ -> false)

let test_binder_tautologies () =
  let q = compile_ok "SELECT * FROM t WHERE t.a = t.a AND 1 = 1" in
  Alcotest.(check int) "tautologies dropped" 0 (List.length q.Query.predicates);
  let err = compile_err "SELECT * FROM t WHERE 1 = 2" in
  Alcotest.(check bool) "always-false rejected" true
    (String.length err > 0)

let test_binder_errors () =
  List.iter
    (fun sql -> ignore (compile_err sql))
    [
      "SELECT * FROM missing";
      "SELECT * FROM t WHERE z = 1";
      "SELECT * FROM t, u WHERE a = 1" (* ambiguous a *);
      "SELECT * FROM t WHERE u.c = 1" (* u not in FROM *);
      "SELECT * FROM t WHERE t.zz = 1";
      "SELECT * FROM t WHERE t.a < t.b" (* intra-table column inequality *);
      "SELECT * FROM t, u WHERE t.a <> u.a" (* anti-join key *);
      "SELECT * FROM t WHERE a = 'text'" (* type mismatch *);
      "SELECT zz FROM t";
    ]

let test_binder_between_estimation () =
  (* BETWEEN folds into the tightest-range machinery of step 3. *)
  let q = compile_ok "SELECT * FROM t WHERE a BETWEEN 2 AND 5" in
  Alcotest.(check int) "two range predicates" 2 (List.length q.Query.predicates)

let test_binder_count_star () =
  let q = compile_ok "SELECT COUNT(*) FROM t" in
  Alcotest.(check bool) "projection" true (q.Query.projection = Query.Count_star)

let test_binder_suggestions () =
  let err = compile_err "SELECT * FROM tt" in
  Alcotest.(check bool) "near-miss table suggested" true
    (Helpers.contains err "did you mean \"t\"?");
  let err = compile_err "SELECT * FROM t WHERE bb = 1" in
  Alcotest.(check bool) "near-miss column suggested" true
    (Helpers.contains err "did you mean \"b\"?")

(* compile_result classifies failures: syntax problems carry a position,
   binding problems are Invalid_query — never a raw exception. *)
let test_binder_compile_result () =
  let compile sql = Sqlfront.Binder.compile_result (binder_db ()) sql in
  (match compile "SELECT * FROM t WHERE a = " with
  | Error (Els.Els_error.Parse_error { position; detail }) ->
    Alcotest.(check int) "parse error position" 26 position;
    Alcotest.(check bool) "parse error detail" true
      (Helpers.contains detail "expected operand")
  | _ -> Alcotest.fail "expected Parse_error");
  (match compile "'oops" with
  | Error (Els.Els_error.Parse_error { position; detail }) ->
    Alcotest.(check int) "lex error position" 0 position;
    Alcotest.(check bool) "lex error detail" true
      (Helpers.contains detail "unterminated string literal")
  | _ -> Alcotest.fail "expected Parse_error for lex failure");
  (match compile "SELECT * FROM missing" with
  | Error (Els.Els_error.Invalid_query { detail }) ->
    Alcotest.(check bool) "unknown table named" true
      (Helpers.contains detail "missing")
  | _ -> Alcotest.fail "expected Invalid_query");
  match compile "SELECT * FROM t WHERE a < 5" with
  | Ok q -> Alcotest.(check int) "well-formed binds" 1 (List.length q.Query.predicates)
  | Error e -> Alcotest.fail (Els.Els_error.to_string e)

(* Comparison joins bind to first-class Col_cmp predicates; the band
   spelling folds into [Band eps]; asymmetric bands and <> joins are
   refused with positioned structured errors. *)
let test_binder_comparison_joins () =
  let q = compile_ok "SELECT * FROM t, u WHERE t.a < u.a" in
  Alcotest.(check bool) "inequality join binds to Col_cmp Lt" true
    (match q.Query.predicates with
    | [ Query.Predicate.Col_cmp { op = Query.Predicate.Lt; _ } ] -> true
    | _ -> false);
  let q =
    compile_ok "SELECT * FROM t, u WHERE t.a BETWEEN u.a - 2 AND u.a + 2"
  in
  (match q.Query.predicates with
  | [ Query.Predicate.Col_cmp { op = Query.Predicate.Band eps; left; right } ]
    ->
    Alcotest.(check (float 0.)) "epsilon" 2. eps;
    Alcotest.(check bool) "band sides" true
      (Query.Cref.equal left (Query.Cref.v "t" "a")
      && Query.Cref.equal right (Query.Cref.v "u" "a"))
  | _ -> Alcotest.fail "expected a single Band predicate");
  match
    Sqlfront.Binder.compile_result (binder_db ())
      "SELECT * FROM t, u WHERE t.a BETWEEN u.a - 1 AND u.a + 2"
  with
  | Error (Els.Els_error.Parse_error { detail; _ }) ->
    Alcotest.(check bool) "asymmetric band refused" true
      (Helpers.contains detail "symmetric")
  | _ -> Alcotest.fail "expected Parse_error for asymmetric band"

let test_binder_ne_hint () =
  let sql = "SELECT * FROM t, u WHERE t.a <> u.a" in
  match Sqlfront.Binder.compile_result (binder_db ()) sql with
  | Error (Els.Els_error.Parse_error { position; detail }) ->
    Alcotest.(check int) "position points at <>" 29 position;
    Alcotest.(check bool) "did-you-mean hint" true
      (Helpers.contains detail "did you mean")
  | _ -> Alcotest.fail "expected positioned Parse_error for <> join"

let suite =
  [
    Alcotest.test_case "lexer: basics" `Quick test_lexer_basics;
    Alcotest.test_case "lexer: literals" `Quick test_lexer_literals;
    Alcotest.test_case "lexer: operators" `Quick test_lexer_operators;
    Alcotest.test_case "lexer: errors" `Quick test_lexer_errors;
    Alcotest.test_case "parser: query shapes" `Quick test_parser_shapes;
    Alcotest.test_case "parser: literal sides" `Quick test_parser_literals_sides;
    Alcotest.test_case "parser: aliases" `Quick test_parser_aliases;
    Alcotest.test_case "parser: between" `Quick test_parser_between;
    Alcotest.test_case "parser: errors" `Quick test_parser_errors;
    Alcotest.test_case "parser: error positions" `Quick
      test_parser_error_positions;
    Alcotest.test_case "binder: resolution" `Quick test_binder_resolution;
    Alcotest.test_case "binder: normalization" `Quick test_binder_normalization;
    Alcotest.test_case "binder: tautologies" `Quick test_binder_tautologies;
    Alcotest.test_case "binder: errors" `Quick test_binder_errors;
    Alcotest.test_case "binder: between" `Quick test_binder_between_estimation;
    Alcotest.test_case "binder: count star" `Quick test_binder_count_star;
    Alcotest.test_case "binder: suggestions" `Quick test_binder_suggestions;
    Alcotest.test_case "binder: compile_result" `Quick
      test_binder_compile_result;
    Alcotest.test_case "binder: comparison joins" `Quick
      test_binder_comparison_joins;
    Alcotest.test_case "binder: <> hint" `Quick test_binder_ne_hint;
  ]
