(* Unit tests for the statistics substrate: urn model, histograms,
   column stats, local selectivity estimation. *)

let check_float = Helpers.check_float

(* --- Urn --- *)

let test_urn_edges () =
  check_float "no urns" 0. (Stats.Urn.expected_distinct ~urns:0. ~balls:10.);
  check_float "no balls" 0. (Stats.Urn.expected_distinct ~urns:10. ~balls:0.);
  check_float "one urn" 1. (Stats.Urn.expected_distinct ~urns:1. ~balls:5.);
  check_float ~eps:1e-6 "one ball" 1.
    (Stats.Urn.expected_distinct ~urns:1000. ~balls:1.)

let test_urn_exact_small () =
  (* n=2, k=2: 2*(1 - (1/2)^2) = 1.5 *)
  check_float ~eps:1e-12 "2 urns 2 balls" 1.5
    (Stats.Urn.expected_distinct ~urns:2. ~balls:2.);
  (* n=3, k=2: 3*(1 - (2/3)^2) = 5/3 *)
  check_float ~eps:1e-12 "3 urns 2 balls" (5. /. 3.)
    (Stats.Urn.expected_distinct ~urns:3. ~balls:2.)

let test_urn_bounds () =
  List.iter
    (fun (n, k) ->
      let e = Stats.Urn.expected_distinct ~urns:n ~balls:k in
      Alcotest.(check bool)
        (Printf.sprintf "0 <= E <= min for n=%g k=%g" n k)
        true
        (e >= 0. && e <= Float.min n k +. 1e-9))
    [ (1., 1.); (10., 5.); (5., 10.); (1e6, 3.); (3., 1e6); (1e5, 1e5) ]

let test_urn_monotone () =
  let prev = ref 0. in
  List.iter
    (fun k ->
      let e = Stats.Urn.expected_distinct ~urns:1000. ~balls:k in
      Alcotest.(check bool) "monotone in balls" true (e >= !prev);
      prev := e)
    [ 1.; 10.; 100.; 1000.; 10000. ]

let test_urn_no_underflow () =
  (* Large k must not underflow to a NaN or negative value. *)
  let e = Stats.Urn.expected_distinct ~urns:10000. ~balls:1e9 in
  Alcotest.(check bool) "huge k saturates" true
    (Float.abs (e -. 10000.) < 1e-6);
  let e2 = Stats.Urn.expected_distinct ~urns:1e9 ~balls:2. in
  Alcotest.(check bool) "tiny fill stays ~k" true (Float.abs (e2 -. 2.) < 1e-6)

let test_urn_survival () =
  check_float ~eps:1e-9 "survival fraction" 0.75
    (Stats.Urn.survival_fraction ~urns:2. ~balls:2.)

(* --- Histogram --- *)

let floats_of_ints l = Array.of_list (List.map float_of_int l)

let test_histogram_build () =
  let values = floats_of_ints [ 1; 2; 2; 3; 4; 5; 6; 7; 8; 100 ] in
  let h = Option.get (Stats.Histogram.build Stats.Histogram.Equi_depth ~buckets:5 values) in
  check_float "total count" 10. (Stats.Histogram.total_count h);
  let buckets = Stats.Histogram.buckets h in
  Alcotest.(check bool) "has buckets" true (List.length buckets >= 2);
  List.iter
    (fun b ->
      Alcotest.(check bool) "bucket bounds ordered" true
        (b.Stats.Histogram.lo <= b.Stats.Histogram.hi);
      Alcotest.(check bool) "bucket distinct <= count" true
        (b.Stats.Histogram.distinct <= b.Stats.Histogram.count))
    buckets

let test_histogram_empty_and_errors () =
  Alcotest.(check bool) "empty input" true
    (Stats.Histogram.build Stats.Histogram.Equi_width ~buckets:4 [||] = None);
  Alcotest.check_raises "zero buckets"
    (Invalid_argument "Histogram.build: buckets < 1") (fun () ->
      ignore (Stats.Histogram.build Stats.Histogram.Equi_width ~buckets:0 [| 1. |]))

let exact_selectivity values op c =
  let n = Array.length values in
  let hits = Array.fold_left (fun acc v -> if Rel.Cmp.holds op (Float.compare v c) then acc + 1 else acc) 0 values in
  float_of_int hits /. float_of_int n

let test_histogram_selectivity_uniform () =
  (* On uniform data with many buckets, the estimate should be close to
     exact for range predicates. *)
  let values = Array.init 1000 (fun i -> float_of_int (i + 1)) in
  List.iter
    (fun kind ->
      let h = Option.get (Stats.Histogram.build kind ~buckets:20 values) in
      List.iter
        (fun (op, c) ->
          let est = Stats.Histogram.selectivity h op c in
          let exact = exact_selectivity values op c in
          Alcotest.(check bool)
            (Printf.sprintf "sel %s %g close" (Rel.Cmp.to_string op) c)
            true
            (Float.abs (est -. exact) < 0.03))
        Rel.Cmp.[ (Lt, 100.); (Le, 500.); (Gt, 900.); (Ge, 1.); (Lt, 1500.); (Gt, 2000.) ])
    Stats.Histogram.[ Equi_width; Equi_depth ]

let test_histogram_selectivity_skewed () =
  (* Heavy value 7 occupies 60% of rows; equi-depth should see it. *)
  let values =
    Array.concat
      [ Array.make 600 7.; Array.init 400 (fun i -> float_of_int (i + 10)) ]
  in
  let h = Option.get (Stats.Histogram.build Stats.Histogram.Equi_depth ~buckets:10 values) in
  let est = Stats.Histogram.selectivity h Rel.Cmp.Eq 7. in
  Alcotest.(check bool) "heavy hitter found" true (est > 0.3);
  let est_absent = Stats.Histogram.selectivity h Rel.Cmp.Eq 8. in
  Alcotest.(check bool) "absent value small" true (est_absent < 0.05)

let test_histogram_clamped () =
  let values = floats_of_ints [ 1; 2; 3 ] in
  let h = Option.get (Stats.Histogram.build Stats.Histogram.Equi_width ~buckets:2 values) in
  List.iter
    (fun (op, c) ->
      let s = Stats.Histogram.selectivity h op c in
      Alcotest.(check bool) "in [0,1]" true (s >= 0. && s <= 1.))
    Rel.Cmp.[ (Lt, -5.); (Gt, -5.); (Le, 100.); (Ge, 100.); (Eq, 2.); (Ne, 2.) ]

(* --- Col_stats --- *)

let test_col_stats_of_values () =
  let values =
    [| Rel.Value.Int 5; Rel.Value.Int 5; Rel.Value.Null; Rel.Value.Int 9 |]
  in
  let s = Stats.Col_stats.of_values values in
  Alcotest.(check int) "distinct" 2 s.Stats.Col_stats.distinct;
  Alcotest.(check int) "nulls" 1 s.Stats.Col_stats.nulls;
  Alcotest.(check bool) "min" true
    (s.Stats.Col_stats.min_value = Some (Rel.Value.Int 5));
  Alcotest.(check bool) "max" true
    (s.Stats.Col_stats.max_value = Some (Rel.Value.Int 9));
  Alcotest.(check bool) "no histogram unless asked" true
    (s.Stats.Col_stats.histogram = None)

let test_col_stats_histogram_request () =
  let values = Array.init 100 (fun i -> Rel.Value.Int i) in
  let s =
    Stats.Col_stats.of_values ~histogram:Stats.Histogram.Equi_depth
      ~histogram_buckets:8 values
  in
  Alcotest.(check bool) "histogram built" true
    (s.Stats.Col_stats.histogram <> None);
  let strings = Array.make 5 (Rel.Value.String "x") in
  let s2 = Stats.Col_stats.of_values ~histogram:Stats.Histogram.Equi_depth strings in
  Alcotest.(check bool) "no numeric histogram on strings" true
    (s2.Stats.Col_stats.histogram = None)

(* --- Selectivity_est --- *)

let bounded_stats ~d ~lo ~hi =
  Stats.Col_stats.with_bounds ~distinct:d ~lo:(Rel.Value.Int lo)
    ~hi:(Rel.Value.Int hi)

let test_sel_equality () =
  let s = bounded_stats ~d:100 ~lo:1 ~hi:100 in
  check_float "eq = 1/d" 0.01
    (Stats.Selectivity_est.comparison s Rel.Cmp.Eq (Rel.Value.Int 50));
  check_float "eq outside bounds" 0.
    (Stats.Selectivity_est.comparison s Rel.Cmp.Eq (Rel.Value.Int 500));
  check_float "ne complements" 0.99
    (Stats.Selectivity_est.comparison s Rel.Cmp.Ne (Rel.Value.Int 50))

let test_sel_range_int_interpolation () =
  (* The Section 8 case: s < 100 over keys 1..1000 is 99/1000. *)
  let s = bounded_stats ~d:1000 ~lo:1 ~hi:1000 in
  check_float "s < 100" 0.099
    (Stats.Selectivity_est.comparison s Rel.Cmp.Lt (Rel.Value.Int 100));
  check_float "s <= 100" 0.1
    (Stats.Selectivity_est.comparison s Rel.Cmp.Le (Rel.Value.Int 100));
  check_float "s > 900" 0.1
    (Stats.Selectivity_est.comparison s Rel.Cmp.Gt (Rel.Value.Int 900));
  check_float "s >= 1" 1.
    (Stats.Selectivity_est.comparison s Rel.Cmp.Ge (Rel.Value.Int 1));
  check_float "clamped below" 0.
    (Stats.Selectivity_est.comparison s Rel.Cmp.Lt (Rel.Value.Int (-5)));
  check_float "clamped above" 1.
    (Stats.Selectivity_est.comparison s Rel.Cmp.Le (Rel.Value.Int 99999))

let test_sel_defaults () =
  let s = Stats.Col_stats.trivial ~distinct:0 in
  check_float "default equality" Stats.Selectivity_est.default_eq
    (Stats.Selectivity_est.comparison s Rel.Cmp.Eq (Rel.Value.Int 1));
  check_float "default range" Stats.Selectivity_est.default_range
    (Stats.Selectivity_est.comparison s Rel.Cmp.Lt (Rel.Value.Int 1));
  check_float "null constant" 0.
    (Stats.Selectivity_est.comparison s Rel.Cmp.Eq Rel.Value.Null)

let test_sel_range_pair () =
  let s = bounded_stats ~d:1000 ~lo:1 ~hi:1000 in
  (* 100 < x <= 200: mass(<=200) - mass(<=100) = 0.2 - 0.1 *)
  check_float ~eps:1e-9 "interval" 0.1
    (Stats.Selectivity_est.range_pair s
       ~lower:(Some (Rel.Cmp.Gt, Rel.Value.Int 100))
       ~upper:(Some (Rel.Cmp.Le, Rel.Value.Int 200)));
  check_float "unbounded" 1.
    (Stats.Selectivity_est.range_pair s ~lower:None ~upper:None);
  check_float "empty interval clamps to 0" 0.
    (Stats.Selectivity_est.range_pair s
       ~lower:(Some (Rel.Cmp.Ge, Rel.Value.Int 900))
       ~upper:(Some (Rel.Cmp.Le, Rel.Value.Int 100)))

let test_sel_non_integer_constant () =
  (* Regression: over an integer domain a fractional constant occupies no
     discrete slot, so < and <= coincide: x < 2.5 ≡ x <= 2.5 ≡ x ∈ {1, 2}.
     The pre-fix interpolation returned (x − lo)/width for the strict
     side, undercounting the mass by half a value. *)
  let s = bounded_stats ~d:10 ~lo:1 ~hi:10 in
  check_float ~eps:1e-9 "x < 2.5 = 2/10" 0.2
    (Stats.Selectivity_est.comparison s Rel.Cmp.Lt (Rel.Value.Float 2.5));
  check_float ~eps:1e-9 "x <= 2.5 = 2/10" 0.2
    (Stats.Selectivity_est.comparison s Rel.Cmp.Le (Rel.Value.Float 2.5));
  check_float ~eps:1e-9 "x > 2.5 = 8/10" 0.8
    (Stats.Selectivity_est.comparison s Rel.Cmp.Gt (Rel.Value.Float 2.5));
  check_float ~eps:1e-9 "x >= 2.5 = 8/10" 0.8
    (Stats.Selectivity_est.comparison s Rel.Cmp.Ge (Rel.Value.Float 2.5));
  (* Integer constants keep the off-by-one-aware discrete split. *)
  check_float ~eps:1e-9 "x < 3 = 2/10" 0.2
    (Stats.Selectivity_est.comparison s Rel.Cmp.Lt (Rel.Value.Int 3));
  check_float ~eps:1e-9 "x <= 3 = 3/10" 0.3
    (Stats.Selectivity_est.comparison s Rel.Cmp.Le (Rel.Value.Int 3))

let test_cdf_eval_guard () =
  (* cdf_eval answers cumulative (Lt/Le) queries only; anything else is a
     caller bug and must be refused loudly, not silently answered with
     the at-or-below mass. *)
  let s = bounded_stats ~d:10 ~lo:1 ~hi:10 in
  (match Stats.Selectivity_est.cdf_eval s Rel.Cmp.Lt 3. with
  | Some v -> check_float ~eps:1e-9 "F_lt(3) = 2/10" 0.2 v
  | None -> Alcotest.fail "cdf_eval returned None on bounded stats");
  List.iter
    (fun op ->
      Alcotest.(check bool)
        (Printf.sprintf "cdf_eval refuses %s" (Rel.Cmp.to_string op))
        true
        (match Stats.Selectivity_est.cdf_eval s op 3. with
        | exception Invalid_argument _ -> true
        | _ -> false))
    [ Rel.Cmp.Eq; Rel.Cmp.Ne; Rel.Cmp.Gt; Rel.Cmp.Ge ]

(* --- Degree --- *)

let test_degree_of_values () =
  let values =
    Array.concat
      [
        Array.make 4 (Rel.Value.Int 1);
        Array.make 2 (Rel.Value.Int 2);
        [| Rel.Value.Int 3; Rel.Value.Null |];
      ]
  in
  let d = Stats.Degree.of_values values in
  check_float "l1 = non-null rows" 7. (Stats.Degree.l1 d);
  check_float "l2² = 16+4+1" 21. (Stats.Degree.l2_sq d);
  check_float "l2 = √(l2²)" (Float.sqrt 21.) (Stats.Degree.l2 d);
  check_float "linf = heaviest degree" 4. (Stats.Degree.linf d);
  Alcotest.(check bool) "complete under capacity" true (Stats.Degree.complete d);
  Alcotest.(check (array (float 0.)))
    "top-k descending" [| 4.; 2.; 1. |]
    (Stats.Degree.top_degrees d)

let test_degree_truncation () =
  (* More distinct values than the tracked capacity: norms stay exact
     (computed before truncation), the top-k keeps the heaviest, and the
     completeness flag drops. *)
  let counts = List.init 40 (fun i -> (Rel.Value.Int i, i + 1)) in
  let d = Stats.Degree.of_counts counts in
  Alcotest.(check bool) "not complete past capacity" false
    (Stats.Degree.complete d);
  Alcotest.(check int) "top-k capped at default k"
    Stats.Degree.default_k
    (Array.length (Stats.Degree.top_degrees d));
  check_float "l1 exact despite truncation" 820. (Stats.Degree.l1 d);
  check_float "linf exact despite truncation" 40. (Stats.Degree.linf d);
  check_float "heaviest entry leads" 40. (Stats.Degree.top_degrees d).(0)

let test_degree_join_bound () =
  (* a: degrees 3,2; b: degrees 2,1 — both complete, so the bound is
     exactly the pairwise product of the sorted sequences 3·2 + 2·1. *)
  let counts l = List.map (fun (v, c) -> (Rel.Value.Int v, c)) l in
  let a = Stats.Degree.of_counts (counts [ (1, 3); (2, 2) ]) in
  let b = Stats.Degree.of_counts (counts [ (1, 2); (2, 1) ]) in
  check_float "complete: pairwise product" 8. (Stats.Degree.join_bound a b);
  check_float "symmetric" 8. (Stats.Degree.join_bound b a);
  (* Truncated to k=1 the untracked tail is capped, never dropped: the
     bound must still dominate the maximal coupling. *)
  let a1 = Stats.Degree.of_counts ~k:1 (counts [ (1, 3); (2, 2) ]) in
  let b1 = Stats.Degree.of_counts ~k:1 (counts [ (1, 2); (2, 1) ]) in
  Alcotest.(check bool) "truncated bound dominates the coupling" true
    (Stats.Degree.join_bound a1 b1 >= 8.);
  (* Key columns: all degrees 1, so the bound is the smaller row count. *)
  let key n =
    Stats.Degree.of_counts (List.init n (fun i -> (Rel.Value.Int i, 1)))
  in
  check_float "key join caps at the smaller side" 5.
    (Stats.Degree.join_bound (key 5) (key 9))

let test_urn_int_boundary () =
  (* The ceiling variant must stay inside native int range even at the
     extreme corner — ⌈n·(1 − (1 − 1/n)^k)⌉ can round to n + 1 in float,
     which overflows when n = max_int. *)
  let e = Stats.Urn.expected_distinct_int ~urns:max_int ~balls:max_int in
  Alcotest.(check bool) "max_int corner stays in range" true
    (e >= 0 && e <= max_int);
  Alcotest.(check int) "one ball" 1
    (Stats.Urn.expected_distinct_int ~urns:max_int ~balls:1);
  Alcotest.(check int) "one urn" 1
    (Stats.Urn.expected_distinct_int ~urns:1 ~balls:max_int);
  Alcotest.(check int) "no urns" 0
    (Stats.Urn.expected_distinct_int ~urns:0 ~balls:5);
  Alcotest.(check int) "no balls" 0
    (Stats.Urn.expected_distinct_int ~urns:5 ~balls:0);
  (* ⌈·⌉ of the float model, spot-checked: n=2, k=2 → ⌈1.5⌉ = 2. *)
  Alcotest.(check int) "ceiling of 1.5" 2
    (Stats.Urn.expected_distinct_int ~urns:2 ~balls:2)

let test_equi_depth_bucket_cap () =
  (* build's contract: never more buckets than requested, whatever the
     value-count / bucket-count ratio (the pre-fix ceiling targets could
     overshoot by one on awkward ratios). *)
  List.iter
    (fun (n_values, requested) ->
      let values = Array.init n_values (fun i -> float_of_int (i * i mod 37)) in
      let h =
        Option.get
          (Stats.Histogram.build Stats.Histogram.Equi_depth ~buckets:requested
             values)
      in
      let got = List.length (Stats.Histogram.buckets h) in
      Alcotest.(check bool)
        (Printf.sprintf "%d values / %d buckets: got %d" n_values requested got)
        true
        (got >= 1 && got <= requested);
      Alcotest.(check (option int)) "budget recorded" (Some requested)
        (Stats.Histogram.requested_buckets h);
      check_float "count preserved" (float_of_int n_values)
        (Stats.Histogram.total_count h))
    [ (10, 3); (7, 3); (11, 4); (5, 2); (100, 7); (3, 5); (1, 4); (64, 64) ]

let test_sel_histogram_priority () =
  (* With a histogram present, estimates come from it, not min/max. *)
  let values = Array.init 1000 (fun i -> Rel.Value.Int (i + 1)) in
  let s = Stats.Col_stats.of_values ~histogram:Stats.Histogram.Equi_depth values in
  let est = Stats.Selectivity_est.comparison s Rel.Cmp.Lt (Rel.Value.Int 100) in
  Alcotest.(check bool) "histogram-based estimate close" true
    (Float.abs (est -. 0.099) < 0.02)

let suite =
  [
    Alcotest.test_case "urn: edge cases" `Quick test_urn_edges;
    Alcotest.test_case "urn: exact small cases" `Quick test_urn_exact_small;
    Alcotest.test_case "urn: bounds" `Quick test_urn_bounds;
    Alcotest.test_case "urn: monotone in balls" `Quick test_urn_monotone;
    Alcotest.test_case "urn: no under/overflow" `Quick test_urn_no_underflow;
    Alcotest.test_case "urn: survival fraction" `Quick test_urn_survival;
    Alcotest.test_case "urn: int ceiling boundary" `Quick test_urn_int_boundary;
    Alcotest.test_case "histogram: equi-depth bucket cap" `Quick
      test_equi_depth_bucket_cap;
    Alcotest.test_case "histogram: build invariants" `Quick test_histogram_build;
    Alcotest.test_case "histogram: empty and errors" `Quick
      test_histogram_empty_and_errors;
    Alcotest.test_case "histogram: uniform accuracy" `Quick
      test_histogram_selectivity_uniform;
    Alcotest.test_case "histogram: skew detection" `Quick
      test_histogram_selectivity_skewed;
    Alcotest.test_case "histogram: clamping" `Quick test_histogram_clamped;
    Alcotest.test_case "col_stats: of_values" `Quick test_col_stats_of_values;
    Alcotest.test_case "col_stats: histogram request" `Quick
      test_col_stats_histogram_request;
    Alcotest.test_case "selectivity: equality" `Quick test_sel_equality;
    Alcotest.test_case "selectivity: integer interpolation" `Quick
      test_sel_range_int_interpolation;
    Alcotest.test_case "selectivity: defaults" `Quick test_sel_defaults;
    Alcotest.test_case "selectivity: range pairs" `Quick test_sel_range_pair;
    Alcotest.test_case "selectivity: histogram priority" `Quick
      test_sel_histogram_priority;
    Alcotest.test_case "selectivity: non-integer constant over int domain"
      `Quick test_sel_non_integer_constant;
    Alcotest.test_case "selectivity: cdf_eval refuses non-CDF ops" `Quick
      test_cdf_eval_guard;
    Alcotest.test_case "degree: of_values norms" `Quick test_degree_of_values;
    Alcotest.test_case "degree: truncation past capacity" `Quick
      test_degree_truncation;
    Alcotest.test_case "degree: join bound" `Quick test_degree_join_bound;
  ]
