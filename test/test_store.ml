(* The versioned catalog store: epoch snapshots, streamed deltas, the
   publish audit ladder (quarantine / backoff / retry / hard fallback)
   and the Distinct_drift audit the sketches enable. *)

let config = Els.Config.with_strictness Catalog.Validate.Repair Els.Config.els

let base_query () =
  let db = Harness.Fault.base_db () in
  let query =
    match Sqlfront.Binder.compile db Harness.Fault.default_sql with
    | Ok q -> q
    | Error msg -> Alcotest.fail msg
  in
  (db, query)

let store_of db = Catalog.Store.create ~histogram:Stats.Histogram.Equi_depth ~mcv:5 db

let estimate_epoch epoch query =
  let profile = Els.prepare_epoch config epoch query in
  Els.Incremental.final_size profile query.Query.tables

let rows_for rng n =
  List.init n (fun _ ->
      [
        Rel.Value.Int (Rel.Prng.int_in rng 1 80);
        Rel.Value.Int (Rel.Prng.int_in rng 1 50);
      ])

(* --- epochs -------------------------------------------------------------- *)

let test_epoch_monotone () =
  let db, _ = base_query () in
  let store = store_of db in
  Alcotest.(check int) "starts at epoch 0" 0
    (Catalog.Epoch.id (Catalog.Store.pin store));
  let last = ref 0 in
  for _ = 1 to 5 do
    Catalog.Store.reanalyze store ~table:"t1";
    match Catalog.Store.publish store with
    | Ok e ->
      Alcotest.(check bool) "strictly increasing" true (Catalog.Epoch.id e > !last);
      last := Catalog.Epoch.id e
    | Error issue ->
      Alcotest.fail (Catalog.Validate.issue_to_string issue)
  done

let test_epoch_tables_stats_only () =
  let db, _ = base_query () in
  let store = store_of db in
  List.iter
    (fun (t : Catalog.Table.t) ->
      Alcotest.(check bool)
        (t.Catalog.Table.name ^ " carries no stored relation") true
        (t.Catalog.Table.data = None))
    (Catalog.Db.tables (Catalog.Epoch.db (Catalog.Store.pin store)))

let test_pinned_reader_bit_identical () =
  let db, query = base_query () in
  let store = store_of db in
  let pinned = Catalog.Store.pin store in
  let before = estimate_epoch pinned query in
  let rng = Rel.Prng.create 5 in
  (* Mutate everything underneath the pinned reader. *)
  Catalog.Store.insert store ~table:"t1" (rows_for rng 40);
  Catalog.Store.delete store ~table:"t2" ~indices:[ 0; 1; 2 ];
  Catalog.Store.reanalyze ~shards:3 store ~table:"t1";
  ignore (Catalog.Store.publish store);
  Catalog.Store.corrupt_staged store ~table:"t3"
    (Harness.Fault.corrupt_table Harness.Fault.Negative_rows);
  ignore (Catalog.Store.publish store);
  let after = estimate_epoch pinned query in
  Alcotest.(check bool)
    (Printf.sprintf "pinned estimate %h stays %h" before after)
    true (Float.equal before after);
  Alcotest.(check bool) "estimates are finite" true (Float.is_finite before)

let test_delta_row_counts_exact () =
  let db, _ = base_query () in
  let store = store_of db in
  let rng = Rel.Prng.create 9 in
  Catalog.Store.insert store ~table:"t1" (rows_for rng 25);
  Catalog.Store.delete store ~table:"t1" ~indices:[ 0; 3; 5; 7; 1000000 ];
  (match Catalog.Store.publish store with
  | Ok _ -> ()
  | Error issue -> Alcotest.fail (Catalog.Validate.issue_to_string issue));
  let live = Catalog.Store.live store ~table:"t1" in
  let published =
    Catalog.Db.find_exn (Catalog.Epoch.db (Catalog.Store.pin store)) "t1"
  in
  Alcotest.(check int)
    "published ‖R‖ equals the live cardinality through the delta path"
    (Rel.Relation.cardinality live)
    published.Catalog.Table.row_count;
  let counters = Catalog.Store.stats store in
  Alcotest.(check int) "inserts counted" 25 counters.Catalog.Store.delta_inserts;
  Alcotest.(check int)
    "deletes counted (out-of-range index ignored)" 4
    counters.Catalog.Store.delta_deletes

let test_drift_gauges_move_and_reset () =
  let db, _ = base_query () in
  let store = store_of db in
  let rng = Rel.Prng.create 11 in
  let gauge () = List.assoc "t1" (Catalog.Store.drift store) in
  Alcotest.(check int) "fresh store: no rows since analyze" 0
    (gauge ()).Catalog.Store.rows_since_analyze;
  Catalog.Store.insert store ~table:"t1" (rows_for rng 30);
  Alcotest.(check int) "insert moves the gauge" 30
    (gauge ()).Catalog.Store.rows_since_analyze;
  Catalog.Store.reanalyze store ~table:"t1";
  Alcotest.(check int) "re-ANALYZE resets it" 0
    (gauge ()).Catalog.Store.rows_since_analyze

(* --- the self-healing ladder --------------------------------------------- *)

let test_quarantine_serves_last_good () =
  let db, query = base_query () in
  let store = store_of db in
  let good =
    Catalog.Db.find_exn (Catalog.Epoch.db (Catalog.Store.pin store)) "t1"
  in
  Catalog.Store.corrupt_staged store ~table:"t1"
    (Harness.Fault.corrupt_table Harness.Fault.Negative_rows);
  let epoch =
    match Catalog.Store.publish store with
    | Ok e -> e
    | Error issue -> Alcotest.fail (Catalog.Validate.issue_to_string issue)
  in
  let served = Catalog.Db.find_exn (Catalog.Epoch.db epoch) "t1" in
  Alcotest.(check int)
    "last-known-good row count served, not the corrupt one"
    good.Catalog.Table.row_count served.Catalog.Table.row_count;
  (match Catalog.Epoch.annotations_for epoch "t1" with
  | [] -> Alcotest.fail "quarantined table carries no staleness annotation"
  | note :: _ ->
    Alcotest.(check bool)
      "annotation names the audit failure" true
      (Helpers.contains note "failed audit"));
  let c = Catalog.Store.stats store in
  Alcotest.(check int) "audit failure counted" 1 c.Catalog.Store.audits_failed;
  Alcotest.(check int) "quarantine counted" 1 c.Catalog.Store.quarantines;
  Alcotest.(check int) "currently quarantined" 1 c.Catalog.Store.quarantined_now;
  Alcotest.(check int) "stale serve counted" 1 c.Catalog.Store.stale_served;
  (* The staleness must surface on the explain card. *)
  let sink = Obs.Derivation.create () in
  let profile = Els.prepare_epoch config epoch query in
  Els.Profile.set_derivation profile (Some sink);
  ignore (Els.Incremental.final_size profile query.Query.tables : float);
  Els.Profile.set_derivation profile None;
  let card = Format.asprintf "%a" Obs.Derivation.pp_card sink in
  Alcotest.(check bool)
    "derivation card carries the staleness note" true
    (Helpers.contains card "note:" && Helpers.contains card "t1")

let test_backoff_then_retry_recovers () =
  let db, _ = base_query () in
  let store = store_of db in
  Catalog.Store.corrupt_staged store ~table:"t1"
    (Harness.Fault.corrupt_table Harness.Fault.Negative_rows);
  ignore (Catalog.Store.publish store);
  (* failures=1 → backoff 2: the next two publishes skip the re-audit and
     keep serving last-known-good, the third re-audits and recovers. *)
  let annotated_publish () =
    match Catalog.Store.publish store with
    | Ok e -> Catalog.Epoch.annotations_for e "t1" <> []
    | Error issue -> Alcotest.fail (Catalog.Validate.issue_to_string issue)
  in
  Alcotest.(check bool) "backoff publish 1 still annotated" true
    (annotated_publish ());
  Alcotest.(check bool) "backoff publish 2 still annotated" true
    (annotated_publish ());
  Alcotest.(check bool) "retry publish is clean" false (annotated_publish ());
  let c = Catalog.Store.stats store in
  Alcotest.(check int) "retry counted" 1 c.Catalog.Store.retries;
  Alcotest.(check int) "retry recovered" 1 c.Catalog.Store.retry_successes;
  Alcotest.(check int) "quarantine exited" 0 c.Catalog.Store.quarantined_now;
  Alcotest.(check int)
    "three stale serves along the way" 3 c.Catalog.Store.stale_served

let test_repeat_corruption_deepens_backoff () =
  let db, _ = base_query () in
  let store = store_of db in
  let corrupt_and_publish () =
    Catalog.Store.corrupt_staged store ~table:"t1"
      (Harness.Fault.corrupt_table Harness.Fault.Negative_rows);
    ignore (Catalog.Store.publish store)
  in
  corrupt_and_publish ();
  corrupt_and_publish ();
  let c = Catalog.Store.stats store in
  Alcotest.(check int) "one quarantine entry" 1 c.Catalog.Store.quarantines;
  Alcotest.(check int)
    "second corrupt publish is a failed retry" 1 c.Catalog.Store.retries;
  Alcotest.(check int) "no recovery yet" 0 c.Catalog.Store.retry_successes;
  Alcotest.(check int) "both audits failed" 2 c.Catalog.Store.audits_failed

(* A store whose table is corrupt from the start has no last-known-good
   epoch: the hard-fallback rung is governed by the store's strictness. *)
let corrupt_from_birth strictness =
  let db = Catalog.Db.create () in
  let rel =
    Rel.Relation.of_tuples
      (Rel.Schema.make
         [ Rel.Schema.column ~table:"t" ~name:"a" Rel.Value.Ty_int ])
      (List.init 20 (fun i -> Rel.Tuple.of_list [ Rel.Value.Int (i mod 5) ]))
  in
  Catalog.Db.add db
    (Catalog.Table.stored ~name:"t" ~row_count:20
       ~column_stats:[ ("a", Stats.Col_stats.trivial ~distinct:1000) ]
       rel);
  Catalog.Store.create ~strictness db

let test_hard_fallback_strict_refuses () =
  let store = corrupt_from_birth Catalog.Validate.Strict in
  (match Catalog.Store.publish store with
  | Error issue ->
    Alcotest.(check bool)
      "refusal names the distinct overflow" true
      (issue.Catalog.Validate.kind = Catalog.Validate.Distinct_exceeds_rows)
  | Ok _ -> Alcotest.fail "strict store published corrupt stats with no good epoch");
  let c = Catalog.Store.stats store in
  Alcotest.(check int) "nothing published" 0 c.Catalog.Store.publishes;
  Alcotest.(check int) "epoch unchanged" 0 c.Catalog.Store.epoch

let test_hard_fallback_repair_serves_repaired () =
  let store = corrupt_from_birth Catalog.Validate.Repair in
  let epoch =
    match Catalog.Store.publish store with
    | Ok e -> e
    | Error issue -> Alcotest.fail (Catalog.Validate.issue_to_string issue)
  in
  let served = Catalog.Db.find_exn (Catalog.Epoch.db epoch) "t" in
  Alcotest.(check bool)
    "distinct clamped into [0, rows]" true
    ((Catalog.Table.col_stats_exn served "a").Stats.Col_stats.distinct <= 20);
  (match Catalog.Epoch.annotations_for epoch "t" with
  | [] -> Alcotest.fail "hard fallback carries no annotation"
  | note :: _ ->
    Alcotest.(check bool) "notes the missing good epoch" true
      (Helpers.contains note "no good epoch"));
  Alcotest.(check int)
    "hard fallback counted" 1 (Catalog.Store.stats store).Catalog.Store.hard_fallbacks

let test_hard_fallback_trap_serves_as_is () =
  let store = corrupt_from_birth Catalog.Validate.Trap in
  let epoch =
    match Catalog.Store.publish store with
    | Ok e -> e
    | Error issue -> Alcotest.fail (Catalog.Validate.issue_to_string issue)
  in
  let served = Catalog.Db.find_exn (Catalog.Epoch.db epoch) "t" in
  Alcotest.(check int)
    "trap serves the corrupt distinct unrepaired" 1000
    (Catalog.Table.col_stats_exn served "a").Stats.Col_stats.distinct;
  Alcotest.(check bool)
    "but still annotates" true
    (Catalog.Epoch.annotations_for epoch "t" <> [])

let test_store_rejects_stats_only () =
  let db = Catalog.Db.create () in
  Catalog.Db.add db (Helpers.stats_table "t" 100 [ ("a", 10) ]);
  match Catalog.Store.create db with
  | (_ : Catalog.Store.t) -> Alcotest.fail "stats-only table accepted"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "names the table" true (Helpers.contains msg "t")

(* --- Distinct_drift ------------------------------------------------------ *)

let drifted_table () =
  let sketch =
    Stats.Hll.of_values (Array.init 200 (fun i -> Rel.Value.Int (i + 1)))
  in
  let stats =
    {
      Stats.Col_stats.distinct = 2;
      nulls = 0;
      min_value = Some (Rel.Value.Int 1);
      max_value = Some (Rel.Value.Int 200);
      histogram = None;
      mcv = None;
      distinct_sketch = Some sketch;
      degree = None;
    }
  in
  Catalog.Table.stats_only ~name:"t"
    ~schema:
      (Rel.Schema.make
         [ Rel.Schema.column ~table:"t" ~name:"a" Rel.Value.Ty_int ])
    ~row_count:500 ~column_stats:[ ("a", stats) ]

let test_distinct_drift_detected_and_repaired () =
  let table = drifted_table () in
  (match Catalog.Validate.check_table table with
  | [ issue ] ->
    Alcotest.(check bool) "kind is distinct-drift" true
      (issue.Catalog.Validate.kind = Catalog.Validate.Distinct_drift);
    Alcotest.(check string) "kind name" "distinct-drift"
      (Catalog.Validate.kind_name issue.Catalog.Validate.kind)
  | issues ->
    Alcotest.fail
      (Printf.sprintf "expected exactly the drift issue, got %d" (List.length issues)));
  let repaired, _ = Catalog.Validate.repair_table table in
  let d = (Catalog.Table.col_stats_exn repaired "a").Stats.Col_stats.distinct in
  Alcotest.(check bool)
    (Printf.sprintf "repair adopts the sketch estimate (got %d)" d)
    true
    (d >= 180 && d <= 220)

let test_distinct_drift_tolerates_accurate_stats () =
  (* A freshly analyzed column records d and the sketch together: no
     drift issue may fire on its own output. *)
  let values = Array.init 1000 (fun i -> Rel.Value.Int (i mod 137)) in
  let rel =
    Rel.Relation.of_tuples
      (Rel.Schema.make
         [ Rel.Schema.column ~table:"t" ~name:"a" Rel.Value.Ty_int ])
      (List.map (fun v -> Rel.Tuple.of_list [ v ]) (Array.to_list values))
  in
  let table = Catalog.Analyze.table ~name:"t" rel in
  Alcotest.(check (list Alcotest.string))
    "clean audit" []
    (List.map Catalog.Validate.issue_to_string
       (Catalog.Validate.check_table table))

(* --- property: random mutation storm never tears a pinned reader --------- *)

let gen_storm =
  QCheck2.Gen.(
    let* seed = int_range 0 10000 in
    let* ops = int_range 1 25 in
    return (seed, ops))

let prop_pinned_estimate_survives_storm =
  QCheck2.Test.make ~count:40
    ~name:"pinned epoch estimate bit-identical under mutation storms"
    ~print:(fun (seed, ops) -> Printf.sprintf "seed=%d ops=%d" seed ops)
    gen_storm
    (fun (seed, ops) ->
      let db, query = base_query () in
      let store = store_of db in
      let rng = Rel.Prng.create seed in
      let tables = [ "t1"; "t2"; "t3" ] in
      let pinned = Catalog.Store.pin store in
      let before = estimate_epoch pinned query in
      for _ = 1 to ops do
        let table = List.nth tables (Rel.Prng.int rng 3) in
        match Rel.Prng.int rng 5 with
        | 0 -> Catalog.Store.insert store ~table (rows_for rng (Rel.Prng.int_in rng 1 15))
        | 1 ->
          Catalog.Store.delete store ~table
            ~indices:(List.init (Rel.Prng.int_in rng 1 5) (fun _ -> Rel.Prng.int rng 200))
        | 2 ->
          Catalog.Store.reanalyze ~shards:(Rel.Prng.int_in rng 1 4) store ~table
        | 3 ->
          Catalog.Store.corrupt_staged store ~table
            (Harness.Fault.corrupt_table Harness.Fault.Negative_rows);
          ignore (Catalog.Store.publish store)
        | _ -> ignore (Catalog.Store.publish store)
      done;
      Float.equal before (estimate_epoch pinned query))

let suite =
  [
    Alcotest.test_case "store: epoch ids strictly increase" `Quick
      test_epoch_monotone;
    Alcotest.test_case "store: epochs are stats-only" `Quick
      test_epoch_tables_stats_only;
    Alcotest.test_case "store: pinned reader is bit-identical" `Quick
      test_pinned_reader_bit_identical;
    Alcotest.test_case "store: delta row counts exact" `Quick
      test_delta_row_counts_exact;
    Alcotest.test_case "store: drift gauges move and reset" `Quick
      test_drift_gauges_move_and_reset;
    Alcotest.test_case "store: quarantine serves last-known-good" `Quick
      test_quarantine_serves_last_good;
    Alcotest.test_case "store: backoff then retry recovers" `Quick
      test_backoff_then_retry_recovers;
    Alcotest.test_case "store: repeat corruption deepens backoff" `Quick
      test_repeat_corruption_deepens_backoff;
    Alcotest.test_case "store: strict hard fallback refuses" `Quick
      test_hard_fallback_strict_refuses;
    Alcotest.test_case "store: repair hard fallback repairs" `Quick
      test_hard_fallback_repair_serves_repaired;
    Alcotest.test_case "store: trap hard fallback serves as-is" `Quick
      test_hard_fallback_trap_serves_as_is;
    Alcotest.test_case "store: rejects stats-only tables" `Quick
      test_store_rejects_stats_only;
    Alcotest.test_case "validate: distinct drift detected and repaired" `Quick
      test_distinct_drift_detected_and_repaired;
    Alcotest.test_case "validate: no drift on fresh ANALYZE output" `Quick
      test_distinct_drift_tolerates_accurate_stats;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_pinned_estimate_survives_storm ]
