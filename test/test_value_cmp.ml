(* Regression suite for cross-type numeric comparisons: predicate
   evaluation, local-predicate interval logic and bounds checks compare
   Int/Float by numeric value (Value.compare_sem), while sort keys and
   index structures keep the total type-rank order (Value.compare). *)

let int_ n = Rel.Value.Int n
let float_ x = Rel.Value.Float x
let c t col = Query.Cref.v t col

let test_compare_sem () =
  Alcotest.(check bool) "Int 5 > Float 3.0" true
    (Rel.Value.compare_sem (int_ 5) (float_ 3.0) > 0);
  Alcotest.(check bool) "Int 2 < Float 3.0" true
    (Rel.Value.compare_sem (int_ 2) (float_ 3.0) < 0);
  Alcotest.(check bool) "Float 3.0 = Int 3" true
    (Rel.Value.compare_sem (float_ 3.0) (int_ 3) = 0);
  Alcotest.(check bool) "equal_sem Int/Float" true
    (Rel.Value.equal_sem (int_ 3) (float_ 3.0));
  Alcotest.(check bool) "Float 2.5 between ints" true
    (Rel.Value.compare_sem (float_ 2.5) (int_ 2) > 0
    && Rel.Value.compare_sem (float_ 2.5) (int_ 3) < 0);
  (* Non-numeric pairs keep the total order. *)
  Alcotest.(check bool) "string vs int unchanged" true
    (Rel.Value.compare_sem (Rel.Value.String "a") (int_ 1)
    = Rel.Value.compare (Rel.Value.String "a") (int_ 1))

let test_rank_order_for_sort_keys () =
  (* The total order used by sort keys, indexes and Value.Map must stay
     rank-based: every Int sorts before every Float, whatever the
     magnitudes. compare_sem deliberately disagrees here. *)
  Alcotest.(check bool) "rank: Int 5 before Float 3.0" true
    (Rel.Value.compare (int_ 5) (float_ 3.0) < 0);
  Alcotest.(check bool) "sem disagrees by design" true
    (Rel.Value.compare_sem (int_ 5) (float_ 3.0) > 0)

let test_cmp_eval_truth () =
  Alcotest.(check bool) "Int 5 < Float 3.0 is false" false
    (Rel.Cmp.eval Rel.Cmp.Lt (int_ 5) (float_ 3.0));
  Alcotest.(check bool) "Int 2 < Float 3.0 is true" true
    (Rel.Cmp.eval Rel.Cmp.Lt (int_ 2) (float_ 3.0));
  Alcotest.(check bool) "Int 3 = Float 3.0 is true" true
    (Rel.Cmp.eval Rel.Cmp.Eq (int_ 3) (float_ 3.0));
  Alcotest.(check bool) "Float 4.5 >= Int 5 is false" false
    (Rel.Cmp.eval Rel.Cmp.Ge (float_ 4.5) (int_ 5));
  Alcotest.(check bool) "null still false" false
    (Rel.Cmp.eval Rel.Cmp.Lt Rel.Value.Null (float_ 3.0))

(* Executor truth: an int column filtered by a float literal. *)
let test_executor_float_literal () =
  let schema =
    Rel.Schema.make [ Rel.Schema.column ~table:"r" ~name:"x" Rel.Value.Ty_int ]
  in
  let rel =
    Rel.Relation.of_tuples schema
      (List.map (fun v -> Rel.Tuple.of_list [ int_ v ]) [ 1; 2; 3; 4; 5 ])
  in
  let count op constant =
    let counters = Exec.Counters.create () in
    let op =
      Exec.Scan.relation counters
        ~filters:[ Query.Predicate.cmp (c "r" "x") op constant ]
        rel
    in
    Rel.Relation.cardinality (Exec.Operator.to_relation op)
  in
  (* Rank order called every Int smaller than any Float, turning x < 3.0
     into all-rows-match and x > 3.0 into none. *)
  Alcotest.(check int) "x < 3.0 keeps 1,2" 2 (count Rel.Cmp.Lt (float_ 3.0));
  Alcotest.(check int) "x > 3.0 keeps 4,5" 2 (count Rel.Cmp.Gt (float_ 3.0));
  Alcotest.(check int) "x = 3.0 keeps 3" 1 (count Rel.Cmp.Eq (float_ 3.0));
  Alcotest.(check int) "x <= 2.5 keeps 1,2" 2 (count Rel.Cmp.Le (float_ 2.5))

let stats_1_to_5 () =
  Stats.Col_stats.of_values (Array.init 5 (fun i -> int_ (i + 1)))

(* Local-predicate interval logic across types. *)
let test_local_pred_mixed_types () =
  let stats = stats_1_to_5 () in
  (* x > 4.5 AND x < 2 is a contradiction by value; rank order saw
     Float 4.5 above every Int and kept the interval nonempty. *)
  let combined =
    Els.Local_pred.combine stats
      [ (Rel.Cmp.Gt, float_ 4.5); (Rel.Cmp.Lt, int_ 2) ]
  in
  Alcotest.(check bool) "mixed-type contradiction" true
    (combined.Els.Local_pred.restriction = Els.Local_pred.Contradiction);
  (* x = 3 AND x = 3.0 pin the same value, not a contradiction. *)
  let pinned =
    Els.Local_pred.combine stats
      [ (Rel.Cmp.Eq, int_ 3); (Rel.Cmp.Eq, float_ 3.0) ]
  in
  Alcotest.(check bool) "equality pin across types" true
    (match pinned.Els.Local_pred.restriction with
    | Els.Local_pred.Equality _ -> true
    | Els.Local_pred.Unrestricted | Els.Local_pred.Range _
    | Els.Local_pred.Contradiction ->
      false);
  Alcotest.(check bool) "pinned selectivity positive" true
    (pinned.Els.Local_pred.selectivity > 0.)

(* Bounds checks in equality selectivity. *)
let test_bounds_check_mixed_types () =
  let stats = stats_1_to_5 () in
  (* A float probe inside the recorded Int bounds is in range: 1/d, not
     the 0 the rank-order bounds check produced. *)
  Helpers.check_float ~eps:1e-9 "float probe in int bounds" 0.2
    (Stats.Selectivity_est.comparison stats Rel.Cmp.Eq (float_ 3.0));
  Helpers.check_float ~eps:1e-9 "float probe out of bounds" 0.
    (Stats.Selectivity_est.comparison stats Rel.Cmp.Eq (float_ 9.5));
  Helpers.check_float ~eps:1e-9 "float probe below bounds" 0.
    (Stats.Selectivity_est.comparison stats Rel.Cmp.Eq (float_ 0.5))

(* End to end: the same float-literal query estimated and executed; the
   estimate must see a restriction and the executor must agree on truth. *)
let test_end_to_end_agreement () =
  let db = Catalog.Db.create () in
  let schema =
    Rel.Schema.make [ Rel.Schema.column ~table:"r" ~name:"x" Rel.Value.Ty_int ]
  in
  let rel =
    Rel.Relation.of_tuples schema
      (List.map (fun v -> Rel.Tuple.of_list [ int_ v ]) [ 1; 2; 3; 4; 5 ])
  in
  ignore (Catalog.Analyze.register db ~name:"r" rel);
  let query =
    Query.make ~tables:[ "r" ]
      [ Query.Predicate.cmp (c "r" "x") Rel.Cmp.Lt (float_ 3.0) ]
  in
  let profile = Els.prepare Els.Config.els db query in
  let truth =
    float_of_int (Exec.Executor.run_query db query).Exec.Executor.row_count
  in
  Alcotest.(check (float 0.)) "executor truth" 2. truth;
  let estimated = (Els.Profile.table profile "r").Els.Profile.rows in
  Alcotest.(check bool) "estimate sees the restriction" true
    (estimated < 5. && estimated > 0.)

let suite =
  [
    Alcotest.test_case "compare_sem semantics" `Quick test_compare_sem;
    Alcotest.test_case "rank order kept for sort keys" `Quick
      test_rank_order_for_sort_keys;
    Alcotest.test_case "Cmp.eval truth" `Quick test_cmp_eval_truth;
    Alcotest.test_case "executor: float literal on int column" `Quick
      test_executor_float_literal;
    Alcotest.test_case "local predicates: mixed types" `Quick
      test_local_pred_mixed_types;
    Alcotest.test_case "bounds checks: mixed types" `Quick
      test_bounds_check_mixed_types;
    Alcotest.test_case "estimate/execute agreement" `Quick
      test_end_to_end_agreement;
  ]
